package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

func readOne(t *testing.T, b []byte) (byte, []byte, error) {
	t.Helper()
	return ReadFrame(bufio.NewReader(bytes.NewReader(b)))
}

func TestStateRoundTrip(t *testing.T) {
	msgs := []runtime.Message{
		{SN: 0, CP: core.Execute, PH: 0},
		{SN: 7, CP: core.Error, PH: 2},
		{SN: tokenring.Bot, CP: core.Error, PH: 1},
		{SN: tokenring.Top, CP: core.Execute, PH: 3},
	}
	for i := range msgs {
		msgs[i].Sum = msgs[i].Checksum()
	}
	// Also a deliberately corrupted Sum: the codec must carry it verbatim
	// (the protocol layer, not the transport, verifies the end-to-end sum).
	bad := runtime.Message{SN: 3, CP: core.Execute, PH: 1}
	bad.Sum = bad.Checksum() ^ 0xdeadbeef
	msgs = append(msgs, bad)

	groups := []uint32{0, 1, 63, 1<<32 - 1}
	for i, m := range msgs {
		group := groups[i%len(groups)]
		frame := AppendState(nil, group, m)
		typ, payload, err := readOne(t, frame)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", m, err)
		}
		if typ != FrameState {
			t.Fatalf("frame type = %d, want FrameState", typ)
		}
		g, got, err := DecodeState(payload)
		if err != nil {
			t.Fatalf("DecodeState(%+v): %v", m, err)
		}
		if got != m || g != group {
			t.Errorf("round trip: got (%d, %+v), want (%d, %+v)", g, got, group, m)
		}
	}
}

func TestUpRoundTrip(t *testing.T) {
	msgs := []runtime.UpMessage{
		{Child: 3, SN: 0, CP: core.Execute, PH: 0, AckSN: 0, AckCP: core.Ready, AckPH: 0},
		{Child: 1, SN: 7, CP: core.Error, PH: 2, AckSN: 6, AckCP: core.Success, AckPH: 1},
		{Child: 5, SN: tokenring.Bot, CP: core.Error, PH: 1, AckSN: tokenring.Top, AckCP: core.Repeat, AckPH: 3},
	}
	for i := range msgs {
		msgs[i].Sum = msgs[i].Checksum()
	}
	// A corrupted Sum must travel verbatim — the protocol layer verifies it.
	bad := runtime.UpMessage{Child: 2, SN: 3, CP: core.Execute, PH: 1}
	bad.Sum = bad.Checksum() ^ 0xdeadbeef
	msgs = append(msgs, bad)

	groups := []uint32{0, 9, 4095}
	for i, m := range msgs {
		group := groups[i%len(groups)]
		frame := AppendUp(nil, group, m)
		typ, payload, err := readOne(t, frame)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", m, err)
		}
		if typ != FrameUp {
			t.Fatalf("frame type = %d, want FrameUp", typ)
		}
		g, got, err := DecodeUp(payload)
		if err != nil {
			t.Fatalf("DecodeUp(%+v): %v", m, err)
		}
		if got != m || g != group {
			t.Errorf("round trip: got (%d, %+v), want (%d, %+v)", g, got, group, m)
		}
	}

	// Payload-level violations.
	if _, _, err := DecodeUp(make([]byte, upPayloadLen-1)); !errors.Is(err, ErrCodec) {
		t.Errorf("short up payload: %v, want ErrCodec", err)
	}
	badCP := make([]byte, upPayloadLen)
	badCP[12] = byte(core.NumCP)
	if _, _, err := DecodeUp(badCP); !errors.Is(err, ErrCodec) {
		t.Errorf("out-of-range cp: %v, want ErrCodec", err)
	}
	badAck := make([]byte, upPayloadLen)
	badAck[21] = byte(core.NumCP)
	if _, _, err := DecodeUp(badAck); !errors.Is(err, ErrCodec) {
		t.Errorf("out-of-range ack cp: %v, want ErrCodec", err)
	}
}

// oversizeFrame builds a frame whose advertised length exceeds MaxPayload
// but whose CRC is internally consistent — AppendFrame refuses to encode
// one, so it is crafted by hand. Only the length check can reject it.
func oversizeFrame() []byte {
	n := MaxPayload + 1
	b := []byte{magicByte, FrameState, byte(n >> 8), byte(n)}
	b = append(b, make([]byte, n)...)
	crc := crc32.ChecksumIEEE(b)
	return binary.BigEndian.AppendUint32(b, crc)
}

// The oversize reject path must not allocate: the advertised length is
// attacker-controlled, and rejection happens before any buffer is sized by
// it — with a static error, so the hot loop pays nothing for abuse.
func TestOversizeRejectionDoesNotAllocate(t *testing.T) {
	frame := oversizeFrame()
	src := bytes.NewReader(frame)
	br := bufio.NewReader(src)
	if n := testing.AllocsPerRun(200, func() {
		src.Reset(frame)
		br.Reset(src)
		_, _, err := ReadFrame(br)
		if err != errOversizedPayload {
			t.Fatalf("err = %v, want errOversizedPayload", err)
		}
	}); n != 0 {
		t.Errorf("oversize rejection allocates %.1f objects per frame, want 0", n)
	}
}

// The FrameReader hot path must not allocate per accepted frame either —
// the payload is decoded into the reader's own buffer. The v2 group tag
// must not change that.
func TestFrameReaderDoesNotAllocate(t *testing.T) {
	m := runtime.Message{SN: 5, CP: core.Execute, PH: 2}
	m.Sum = m.Checksum()
	frame := AppendState(nil, 17, m)
	src := bytes.NewReader(frame)
	fr := NewFrameReader(src, 256)
	if n := testing.AllocsPerRun(200, func() {
		src.Reset(frame)
		fr.br.Reset(src)
		typ, payload, err := fr.Read()
		if err != nil || typ != FrameState {
			t.Fatalf("Read: type %d err %v", typ, err)
		}
		g, got, err := DecodeState(payload)
		if err != nil || got != m || g != 17 {
			t.Fatalf("DecodeState: (%d, %+v) err %v", g, got, err)
		}
	}); n != 0 {
		t.Errorf("FrameReader.Read allocates %.1f objects per frame, want 0", n)
	}
}

// FrameBuffered lets a reader drain a burst without blocking: it is true
// exactly while complete frames remain buffered.
func TestFrameBuffered(t *testing.T) {
	m := runtime.Message{SN: 1, CP: core.Execute, PH: 0}
	m.Sum = m.Checksum()
	var stream []byte
	for i := 0; i < 3; i++ {
		stream = AppendState(stream, 0, m)
	}
	fr := NewFrameReader(bytes.NewReader(stream), 256)
	for i := 0; i < 3; i++ {
		if _, _, err := fr.Read(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := i < 2; fr.FrameBuffered() != want {
			t.Errorf("after frame %d: FrameBuffered = %v, want %v", i, !want, want)
		}
	}
	// An oversized buffered header also reports true so the next Read can
	// surface the violation.
	fr = NewFrameReader(bytes.NewReader(oversizeFrame()), 256)
	fr.br.Peek(headerLen + 1) // force the header into the buffer
	if !fr.FrameBuffered() {
		t.Error("oversized buffered frame: FrameBuffered = false, want true")
	}
	if _, _, err := fr.Read(); err != errOversizedPayload {
		t.Errorf("err = %v, want errOversizedPayload", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	digests := []uint64{0, 1, 0xdeadbeefcafef00d, 1<<64 - 1}
	for i, id := range []int{0, 1, 3, 1 << 20} {
		digest := digests[i]
		frame := AppendHello(nil, id, digest)
		typ, payload, err := readOne(t, frame)
		if err != nil {
			t.Fatal(err)
		}
		if typ != FrameHello {
			t.Fatalf("frame type = %d, want FrameHello", typ)
		}
		got, gotDigest, err := DecodeHello(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != id || gotDigest != digest {
			t.Errorf("hello round trip: got (%d, %016x), want (%d, %016x)", got, gotDigest, id, digest)
		}
	}
}

func TestTopRoundTrip(t *testing.T) {
	for _, group := range []uint32{0, 7, 1<<32 - 1} {
		frame := AppendTop(nil, group)
		typ, payload, err := readOne(t, frame)
		if err != nil {
			t.Fatal(err)
		}
		if typ != FrameTop {
			t.Fatalf("got type %d, want FrameTop", typ)
		}
		g, err := DecodeTop(payload)
		if err != nil {
			t.Fatal(err)
		}
		if g != group {
			t.Errorf("top round trip: got group %d, want %d", g, group)
		}
	}
	if _, err := DecodeTop(nil); !errors.Is(err, ErrCodec) {
		t.Errorf("v1-style empty top payload: %v, want ErrCodec", err)
	}
}

// ConfigDigest must separate parts (["ab","c"] vs ["a","bc"]) and react to
// every component.
func TestConfigDigest(t *testing.T) {
	if ConfigDigest("ab", "c") == ConfigDigest("a", "bc") {
		t.Error("digest does not separate parts")
	}
	if ConfigDigest("ring", "4") == ConfigDigest("ring", "5") {
		t.Error("digest ignores ring size")
	}
	if ConfigDigest() != ConfigDigest() {
		t.Error("digest not deterministic")
	}
	base := TCPConfig{Peers: []string{"a:1", "b:2", "c:3"}}
	other := base
	other.Group = 1
	if ringDigest(base) == ringDigest(other) {
		t.Error("ring digest ignores the group id")
	}
	reordered := TCPConfig{Peers: []string{"b:2", "a:1", "c:3"}}
	if ringDigest(base) == ringDigest(reordered) {
		t.Error("ring digest ignores peer order")
	}
	if ringDigest(base) == treeDigest(base, []int{-1, 0, 0}) {
		t.Error("ring and tree digests collide")
	}
}

// Several frames back to back decode in order — the reader never consumes
// past a frame boundary.
func TestFrameStream(t *testing.T) {
	m := runtime.Message{SN: 5, CP: core.Execute, PH: 2}
	m.Sum = m.Checksum()
	var buf []byte
	buf = AppendHello(buf, 3, 0xfeed)
	buf = AppendState(buf, 1, m)
	buf = AppendTop(buf, 2)
	br := bufio.NewReader(bytes.NewReader(buf))
	wantTypes := []byte{FrameHello, FrameState, FrameTop}
	for i, want := range wantTypes {
		typ, _, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d: type %d, want %d", i, typ, want)
		}
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

// Every framing violation is a codec error: the caller must drop the
// connection rather than resynchronize.
func TestFrameViolations(t *testing.T) {
	good := AppendState(nil, 3, runtime.Message{SN: 1, CP: core.Execute, PH: 0})

	cases := []struct {
		name string
		b    []byte
	}{
		{"bad magic", append([]byte{0x00}, good[1:]...)},
		{"oversized length", func() []byte {
			b := append([]byte(nil), good...)
			b[2], b[3] = 0xff, 0xff
			return b
		}()},
		{"truncated payload", good[:len(good)-6]},
		{"truncated crc", good[:len(good)-1]},
		{"truncated group tag", good[:headerLen+2]},
		{"flipped payload bit", func() []byte {
			b := append([]byte(nil), good...)
			b[headerLen] ^= 0x01
			return b
		}()},
		{"flipped group bit", func() []byte {
			// Corrupting the group id must fail the frame CRC, not reroute
			// the frame to another group.
			b := append([]byte(nil), good...)
			b[headerLen+3] ^= 0x01
			return b
		}()},
		{"flipped crc bit", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0x01
			return b
		}()},
	}
	truncated := map[string]bool{"truncated payload": true, "truncated crc": true, "truncated group tag": true}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readOne(t, tc.b)
			if err == nil {
				t.Fatal("malformed frame accepted")
			}
			if !truncated[tc.name] && !errors.Is(err, ErrCodec) {
				t.Errorf("err = %v, does not wrap ErrCodec", err)
			}
		})
	}
	// Truncation specifically must also wrap ErrCodec (partial frame, not
	// a clean EOF between frames).
	if _, _, err := readOne(t, good[:len(good)-1]); !errors.Is(err, ErrCodec) {
		t.Errorf("truncated frame: err = %v, want ErrCodec", err)
	}
}

// Payload-level violations.
func TestPayloadViolations(t *testing.T) {
	if _, _, err := DecodeState(make([]byte, statePayloadLen-1)); !errors.Is(err, ErrCodec) {
		t.Errorf("short state payload: %v, want ErrCodec", err)
	}
	// A v1-length state payload (13 bytes, no group tag) must be rejected.
	if _, _, err := DecodeState(make([]byte, 13)); !errors.Is(err, ErrCodec) {
		t.Errorf("v1 state payload: %v, want ErrCodec", err)
	}
	badCP := make([]byte, statePayloadLen)
	badCP[8] = byte(core.NumCP)
	if _, _, err := DecodeState(badCP); !errors.Is(err, ErrCodec) {
		t.Errorf("out-of-range cp: %v, want ErrCodec", err)
	}
	if _, _, err := DecodeHello([]byte{99, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, errHelloVersion) {
		t.Errorf("bad hello version: %v, want errHelloVersion", err)
	}
	// A v1 hello (5-byte payload) must be rejected with the distinct
	// version-mismatch reason, not a generic length error.
	if _, _, err := DecodeHello([]byte{1, 0, 0, 0, 2}); !errors.Is(err, errHelloVersion) {
		t.Errorf("v1 hello: %v, want errHelloVersion", err)
	}
	if _, _, err := DecodeHello([]byte{helloVersion}); !errors.Is(err, ErrCodec) {
		t.Errorf("short hello: %v, want ErrCodec", err)
	}
}

func TestAppendFramePanicsOnOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AppendFrame accepted an oversized payload")
		}
	}()
	AppendFrame(nil, FrameState, make([]byte, MaxPayload+1))
}

// FuzzTransport feeds arbitrary bytes to the frame reader. Invariants: the
// reader never panics, never allocates beyond MaxPayload, and accepts a
// frame only if re-encoding the decoded content reproduces the exact input
// bytes it consumed — so truncated frames, bad checksums and oversized
// lengths can never be accepted.
func FuzzTransport(f *testing.F) {
	m := runtime.Message{SN: 4, CP: core.Execute, PH: 1}
	m.Sum = m.Checksum()
	good := AppendState(nil, 0, m)
	tagged := AppendState(nil, 4242, m)

	um := runtime.UpMessage{Child: 2, SN: 5, CP: core.Success, PH: 0, AckSN: 5, AckCP: core.Success, AckPH: 0}
	um.Sum = um.Checksum()

	f.Add([]byte{})
	f.Add(good)
	f.Add(tagged)
	f.Add(AppendHello(nil, 2, 0x1122334455667788))
	f.Add(AppendTop(nil, 0))
	f.Add(AppendTop(nil, 99))
	f.Add(AppendUp(nil, 0, um))
	f.Add(AppendUp(nil, 7, um))
	f.Add(good[:3])                      // truncated header
	f.Add(good[:len(good)-2])            // truncated trailer
	f.Add(tagged[:headerLen+2])          // truncated inside the group tag
	f.Add(append([]byte{0x00}, good...)) // garbage before a frame
	corrupt := append([]byte(nil), good...)
	corrupt[5] ^= 0x40
	f.Add(corrupt) // checksum mismatch
	groupFlip := append([]byte(nil), tagged...)
	groupFlip[headerLen+1] ^= 0x80
	f.Add(groupFlip) // corrupted group id, stale CRC
	oversize := append([]byte(nil), good...)
	oversize[2], oversize[3] = 0x7f, 0xff
	f.Add(oversize)        // advertised length beyond MaxPayload, stale CRC
	f.Add(oversizeFrame()) // advertised length beyond MaxPayload, valid CRC
	// v1-format frames: 5-byte hello, 13-byte state, empty top — all must
	// reject at the payload decoders, never panic.
	f.Add(AppendFrame(nil, FrameHello, []byte{1, 0, 0, 0, 2}))
	f.Add(AppendFrame(nil, FrameState, make([]byte, 13)))
	f.Add(AppendFrame(nil, FrameTop, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		fr := NewFrameReader(bytes.NewReader(data), 256)
		consumed := 0
		for {
			typ, payload, err := ReadFrame(br)
			// The zero-alloc FrameReader must agree with ReadFrame exactly:
			// same frames accepted, same payload bytes, rejection at the
			// same point in the stream.
			ftyp, fpayload, ferr := fr.Read()
			if (err == nil) != (ferr == nil) {
				t.Fatalf("readers disagree: ReadFrame err %v, FrameReader err %v", err, ferr)
			}
			if err == nil && (ftyp != typ || !bytes.Equal(fpayload, payload)) {
				t.Fatalf("readers disagree: ReadFrame (%d, %x), FrameReader (%d, %x)", typ, payload, ftyp, fpayload)
			}
			if err != nil {
				return // rejection is always a safe outcome
			}
			if len(payload) > MaxPayload {
				t.Fatalf("accepted payload of %d bytes > MaxPayload", len(payload))
			}
			// An accepted frame must be bit-identical to its re-encoding:
			// the CRC makes accepting a damaged frame astronomically
			// unlikely, and this catches any codec asymmetry.
			reenc := AppendFrame(nil, typ, payload)
			end := consumed + len(reenc)
			if end > len(data) || !bytes.Equal(data[consumed:end], reenc) {
				t.Fatalf("accepted frame does not round-trip: type %d payload %x", typ, payload)
			}
			consumed = end
			// Typed payloads must decode or reject cleanly, never panic, and
			// typed re-encoding must reproduce the payload including the
			// group tag.
			switch typ {
			case FrameState:
				if g, sm, err := DecodeState(payload); err == nil {
					if !bytes.Equal(AppendState(nil, g, sm), reenc) {
						t.Fatalf("state re-encode diverges: group %d %+v", g, sm)
					}
				}
			case FrameTop:
				if g, err := DecodeTop(payload); err == nil {
					if !bytes.Equal(AppendTop(nil, g), reenc) {
						t.Fatalf("top re-encode diverges: group %d", g)
					}
				}
			case FrameHello:
				if id, digest, err := DecodeHello(payload); err == nil {
					if !bytes.Equal(AppendHello(nil, id, digest), reenc) {
						t.Fatalf("hello re-encode diverges: id %d digest %016x", id, digest)
					}
				}
			case FrameUp:
				if g, um, err := DecodeUp(payload); err == nil {
					if !bytes.Equal(AppendUp(nil, g, um), reenc) {
						t.Fatalf("up re-encode diverges: group %d %+v", g, um)
					}
				}
			}
		}
	})
}
