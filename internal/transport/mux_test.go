package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/runtime"
)

// runGroupBarrier drives every member of one group's barrier through the
// given number of passes, tolerating ErrReset re-executions.
func runGroupBarrier(ctx context.Context, b *runtime.Barrier, n, nPhases, passes int) error {
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < passes; k++ {
				ph, err := b.Await(ctx, id)
				if errors.Is(err, runtime.ErrReset) {
					k--
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("member %d pass %d: %w", id, k, err)
					return
				}
				if want := (k + 1) % nPhases; ph != want {
					errs <- fmt.Errorf("member %d pass %d: phase %d, want %d", id, k, ph, want)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Many groups — rings and trees — run complete barriers concurrently over
// one shared connection per process pair, under injected corruption and a
// mid-run break of every connection.
func TestMuxMultiGroupBarriers(t *testing.T) {
	const (
		n       = 3
		nGroups = 6
		passes  = 20
		nPhases = 4
	)
	specs := make([]GroupSpec, nGroups)
	for i := range specs {
		topo := GroupRing
		if i%3 == 2 {
			topo = GroupTree
		}
		specs[i] = GroupSpec{ID: uint32(i), Name: fmt.Sprintf("g%02d", i), Topology: topo}
	}
	set, err := NewLoopbackMuxes(n, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, nGroups)
	for i, spec := range specs {
		i, spec := i, spec
		topology := runtime.TopologyRing
		var tr runtime.Transport = set.Ring(spec.ID)
		if spec.Topology == GroupTree {
			topology = runtime.TopologyTree
			tr = set.Tree(spec.ID)
		}
		b, err := runtime.New(runtime.Config{
			Participants: n,
			NPhases:      nPhases,
			Topology:     topology,
			Transport:    tr,
			Resend:       200 * time.Microsecond,
			CorruptRate:  0.01,
			Seed:         int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- runGroupBarrier(ctx, b, n, nPhases, passes)
		}()
	}
	// A network blip mid-run: every shared connection of process 1 drops,
	// taking frames of every group with it. All groups must recover.
	time.Sleep(5 * time.Millisecond)
	set.Muxes[1].BreakConns()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, spec := range specs {
		sent, recv, _ := set.Muxes[0].GroupStats(spec.ID)
		if sent == 0 && recv == 0 {
			t.Errorf("group %s moved no frames through process 0", spec.Name)
		}
	}
	if st := set.Muxes[0].Stats(); st.DecodeErrors != 0 {
		t.Errorf("decode errors on process 0: %d", st.DecodeErrors)
	}
}

// Tearing one group down leaves the others untouched: the stopped group's
// frames (peers keep resending) are dropped silently, not treated as
// protocol errors, and the group can rejoin over the same connections.
func TestMuxGroupTeardownIsolation(t *testing.T) {
	const (
		n       = 2
		nPhases = 2
	)
	specs := []GroupSpec{
		{ID: 0, Name: "alpha"},
		{ID: 1, Name: "beta"},
	}
	reg := obsv.NewRegistry()
	set, err := NewLoopbackMuxes(n, specs, func(cfg *MuxConfig) {
		if cfg.Self == 0 {
			cfg.Registry = reg
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// One barrier per (group, process): the distributed deployment shape.
	newMember := func(group uint32, self int, rejoin bool) *runtime.Barrier {
		b, err := runtime.New(runtime.Config{
			Participants: n,
			NPhases:      nPhases,
			Transport:    set.Muxes[self].Ring(group),
			Members:      []int{self},
			Rejoin:       rejoin,
			Resend:       200 * time.Microsecond,
			Seed:         int64(group)*10 + int64(self),
		})
		if err != nil {
			t.Fatalf("group %d member %d: %v", group, self, err)
		}
		return b
	}
	alpha := []*runtime.Barrier{newMember(0, 0, false), newMember(0, 1, false)}
	beta := []*runtime.Barrier{newMember(1, 0, false), newMember(1, 1, false)}
	defer func() {
		for _, b := range append(alpha, beta...) {
			b.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pass := func(bs []*runtime.Barrier, passes int) error {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for self, b := range bs {
			self, b := self, b
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; k++ {
					if _, err := b.Await(ctx, self); err != nil {
						if errors.Is(err, runtime.ErrReset) {
							k--
							continue
						}
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := pass(alpha, 3); err != nil {
		t.Fatalf("alpha warm-up: %v", err)
	}
	if err := pass(beta, 3); err != nil {
		t.Fatalf("beta warm-up: %v", err)
	}

	// Kill alpha's member on process 0. Its peer on process 1 keeps
	// resending alpha frames into process 0, where the closed link must
	// swallow them.
	alpha[0].Stop()

	if err := pass(beta, 10); err != nil {
		t.Fatalf("beta stalled after alpha teardown: %v", err)
	}
	if st := set.Muxes[0].Stats(); st.DecodeErrors != 0 {
		t.Errorf("frames of the stopped group were counted as decode errors: %d", st.DecodeErrors)
	}
	// The swallowed frames are correct behaviour (the peer's resends are
	// loss), but they must be counted, not silent.
	_, _, dropped := set.Muxes[0].GroupStats(0)
	if dropped == 0 {
		t.Error("closed group discarded frames without counting them")
	}
	if _, _, betaDropped := set.Muxes[0].GroupStats(1); betaDropped != 0 {
		t.Errorf("live group beta counted %d dropped frames", betaDropped)
	}
	// The peer keeps resending, so the counter may advance between reads;
	// assert the scrape carries the series at or past the snapshot.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	scraped := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if v, ok := strings.CutPrefix(line, `transport_group_frames_dropped_total{group="alpha"} `); ok {
			if _, err := fmt.Sscan(v, &scraped); err != nil {
				t.Fatalf("unparsable dropped-frames sample %q: %v", line, err)
			}
		}
	}
	if scraped < dropped {
		t.Errorf("scraped dropped-frames %d, want >= %d\n%s", scraped, dropped, sb.String())
	}

	// Rejoin: a fresh barrier reopens the same group link in the reset
	// state; the surviving peer masks the restart and alpha passes again.
	alpha[0] = newMember(0, 0, true)
	if err := pass(alpha, 5); err != nil {
		t.Fatalf("alpha did not recover after rejoin: %v", err)
	}
}

// Constructor and view validation.
func TestMuxValidation(t *testing.T) {
	if _, err := NewLoopbackMuxes(1, []GroupSpec{{ID: 0, Name: "a"}}); err == nil {
		t.Error("NewLoopbackMuxes(1) succeeded")
	}
	if _, err := NewLoopbackMuxes(2, nil); err == nil {
		t.Error("mux with no groups succeeded")
	}
	if _, err := NewLoopbackMuxes(2, []GroupSpec{{ID: 0, Name: "a"}, {ID: 0, Name: "b"}}); err == nil {
		t.Error("duplicate group id succeeded")
	}
	if _, err := NewLoopbackMuxes(2, []GroupSpec{{ID: 0, Name: "bad name"}}); err == nil {
		t.Error("invalid group name succeeded")
	}
	if _, err := NewLoopbackMuxes(2, []GroupSpec{{ID: 0, Name: "a", Topology: "star"}}); err == nil {
		t.Error("unknown topology succeeded")
	}

	set, err := NewLoopbackMuxes(2, []GroupSpec{
		{ID: 0, Name: "ring0"},
		{ID: 1, Name: "tree0", Topology: GroupTree},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	m := set.Muxes[0]
	if _, err := m.Ring(1).Open(0); err == nil {
		t.Error("ring view opened a tree group")
	}
	if _, err := m.Tree(0).(*muxTreeView).OpenTree(0); err == nil {
		t.Error("tree view opened a ring group")
	}
	if _, err := m.Ring(0).Open(1); err == nil {
		t.Error("opened a member this process does not host")
	}
	if _, err := m.Ring(7).Open(0); err == nil {
		t.Error("opened an undeclared group")
	}
	l, err := m.Ring(0).Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ring(0).Open(0); err == nil {
		t.Error("double open succeeded")
	}
	l.Close()
	if _, err := m.Ring(0).Open(0); err != nil {
		t.Errorf("reopen after close failed: %v", err)
	}
}

// An injected partition isolates one process completely — no pass can
// complete while it holds, because the ring token cannot circulate — and
// healing it restores progress without restarting anything: the dialers
// reconnect and retransmission masks the gap, exactly like a long
// network blip.
func TestMuxPartitionInjection(t *testing.T) {
	const (
		n       = 3
		nPhases = 3
	)
	set, err := NewLoopbackMuxes(n, []GroupSpec{{ID: 0, Name: "g00"}})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	b, err := runtime.New(runtime.Config{
		Participants: n,
		NPhases:      nPhases,
		Transport:    set.Ring(0),
		Resend:       200 * time.Microsecond,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Pass counts per member drift across the partition (abandoned Awaits
	// leave tickets outstanding), so drive passes without phase asserts.
	pass := func(passes int) error {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; {
					_, err := b.Await(ctx, id)
					switch {
					case err == nil:
						k++
					case errors.Is(err, runtime.ErrReset):
					default:
						errs <- fmt.Errorf("member %d: %w", id, err)
						return
					}
				}
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := pass(10); err != nil {
		t.Fatalf("fault-free warmup: %v", err)
	}

	// Partition process 1. No barrier pass may complete while it holds:
	// every Await must time out rather than deliver.
	set.PartitionProc(1, true)
	time.Sleep(10 * time.Millisecond) // let in-flight frames drain or die
	short, scancel := context.WithTimeout(ctx, 250*time.Millisecond)
	var wg sync.WaitGroup
	leaked := make(chan int, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Await(short, id); err == nil {
				leaked <- id
			}
		}()
	}
	wg.Wait()
	scancel()
	select {
	case id := <-leaked:
		t.Fatalf("member %d passed the barrier through a partition", id)
	default:
	}

	// Heal. The same barrier (and the Awaits the timeout abandoned — their
	// tickets stay outstanding) must make progress again.
	set.PartitionProc(1, false)
	if err := pass(10); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// A hybrid group over the mux: each process fuses one host's members and
// the shared connections carry only the host tree. All members pass; a
// mid-run connection break is masked.
func TestMuxHybridGroupBarrier(t *testing.T) {
	const (
		nProcs  = 3
		passes  = 20
		nPhases = 4
	)
	hosts := [][]int{{0, 1, 2}, {3, 4}, {5}}
	const nMembers = 6
	specs := []GroupSpec{
		{ID: 0, Name: "hy0", Topology: GroupHybrid, Hosts: hosts},
		{ID: 1, Name: "ring0"}, // a ring group sharing the same connections
	}
	set, err := NewLoopbackMuxes(nProcs, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	bs := make([]*runtime.Barrier, nProcs)
	for h := range hosts {
		b, err := runtime.New(runtime.Config{
			Participants: nMembers,
			NPhases:      nPhases,
			Topology:     runtime.TopologyHybrid,
			Hosts:        hosts,
			Members:      hosts[h],
			Transport:    set.Muxes[h].Tree(0),
			Resend:       200 * time.Microsecond,
			Seed:         int64(300 + h),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
		bs[h] = b
	}

	var wg sync.WaitGroup
	errs := make(chan error, nMembers)
	for h, roster := range hosts {
		for _, id := range roster {
			h, id := h, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < passes; k++ {
					ph, err := bs[h].Await(ctx, id)
					if errors.Is(err, runtime.ErrReset) {
						k--
						continue
					}
					if err != nil {
						errs <- fmt.Errorf("member %d pass %d: %w", id, k, err)
						return
					}
					if want := (k + 1) % nPhases; ph != want {
						errs <- fmt.Errorf("member %d pass %d: phase %d, want %d", id, k, ph, want)
						return
					}
				}
				errs <- nil
			}()
		}
	}
	// A network blip mid-run.
	time.Sleep(5 * time.Millisecond)
	set.Muxes[1].BreakConns()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	sent, recv, _ := set.Muxes[0].GroupStats(0)
	if sent == 0 && recv == 0 {
		t.Error("hybrid group moved no frames through process 0")
	}
}

// Hybrid group spec validation.
func TestMuxHybridValidation(t *testing.T) {
	if _, err := NewLoopbackMuxes(2, []GroupSpec{
		{ID: 0, Name: "a", Hosts: [][]int{{0}, {1}}}}); err == nil {
		t.Error("Hosts on a ring group succeeded")
	}
	if _, err := NewLoopbackMuxes(2, []GroupSpec{
		{ID: 0, Name: "a", Topology: GroupHybrid}}); err == nil {
		t.Error("hybrid group without Hosts succeeded")
	}
	if _, err := NewLoopbackMuxes(3, []GroupSpec{
		{ID: 0, Name: "a", Topology: GroupHybrid, Hosts: [][]int{{0, 1}, {2, 3}}}}); err == nil {
		t.Error("hybrid group with fewer hosts than processes succeeded")
	}
}
