// TCP tree transport: runtime.TreeTransport over TCP, the network
// counterpart of the in-process channel tree transport.
//
// Topology: tree edge (child, parent) is one TCP connection, dialed by the
// child to its parent's listener and opened with a hello frame naming the
// child. On that connection the child writes FrameUp (its state plus
// subtree acknowledgment) and the parent writes FrameState (the downward
// broadcast) back — the two flows of the double-tree program on one
// socket. An internal node therefore accepts one connection per child
// (demultiplexed by the hello, with replacement semantics so a restarted
// child reattaches) and maintains one outgoing connection to its parent;
// the root only accepts, leaves only dial.
//
// The fault mapping is the ring transport's, unchanged: every socket or
// codec failure becomes loss, masked by the barrier's per-edge
// retransmission.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/prng"
	"repro/internal/runtime"
	"repro/internal/topo"
)

// TCPTree implements runtime.TreeTransport over TCP. It also satisfies the
// ring runtime.Transport interface so it can be placed in Config.Transport,
// but its Open always fails: a tree transport serves only TopologyTree.
type TCPTree struct {
	cfg    TCPConfig
	tree   *topo.Tree
	digest uint64

	mu        sync.Mutex
	links     []*tcpTreeLink
	listeners []net.Listener // pre-bound by NewLoopbackTree, else nil
	closed    bool

	stats tcpStats
}

// treeDigest fingerprints a tree configuration: topology kind, size, the
// parent vector, peer addresses and the group id.
func treeDigest(cfg TCPConfig, parent []int) uint64 {
	parts := make([]string, 0, len(cfg.Peers)+len(parent)+3)
	parts = append(parts, "tree", strconv.Itoa(len(parent)))
	for _, p := range parent {
		parts = append(parts, strconv.Itoa(p))
	}
	parts = append(parts, cfg.Peers...)
	parts = append(parts, strconv.FormatUint(uint64(cfg.Group), 10))
	return ConfigDigest(parts...)
}

// NewTCPTree creates a TCP tree transport for the tree described by the
// parent vector (parent[i] is member i's parent; exactly one root has -1).
// cfg.Peers[i] is member i's listen address; leaves never bind theirs.
// Nothing is bound or dialed until OpenTree.
func NewTCPTree(cfg TCPConfig, parent []int) (*TCPTree, error) {
	if len(cfg.Peers) != len(parent) {
		return nil, fmt.Errorf("transport: %d peers for a %d-member tree", len(cfg.Peers), len(parent))
	}
	tr, err := topo.NewTree(parent)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	reg := cfg.Registry
	cfg.Registry = nil       // the base TCP's stats are unused; register ours below
	base, err := NewTCP(cfg) // reuse the ring constructor's defaulting
	if err != nil {
		return nil, err
	}
	t := &TCPTree{
		cfg:       base.cfg,
		tree:      tr,
		digest:    treeDigest(base.cfg, parent),
		links:     make([]*tcpTreeLink, len(parent)),
		listeners: make([]net.Listener, len(parent)),
	}
	if reg != nil {
		if err := t.stats.register(reg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NewLoopbackTree binds ephemeral loopback listeners and returns a TCP tree
// transport for an all-local binary-heap tree of n members — the same shape
// a TopologyTree barrier builds by default (topo.NewKAryTree(n, 2)). Like
// NewLoopbackRing it lowers the backoff defaults (2ms base, 100ms cap) so
// in-process reconnect tests converge quickly; opts may override any field.
func NewLoopbackTree(n int, opts ...Option) (*TCPTree, error) {
	if n < 2 {
		return nil, errors.New("transport: need at least 2 members")
	}
	shape, err := topo.NewKAryTree(n, 2)
	if err != nil {
		return nil, err
	}
	return NewLoopbackTreeParent(shape.Parent, opts...)
}

// NewLoopbackTreeParent is NewLoopbackTree for an arbitrary tree shape:
// parent[i] is node i's parent, exactly one root has -1. The hybrid
// topology uses it to run a cross-HOST tree on loopback — the transport's
// node space there is host indices (topo.Hybrid.HostTree.Parent), not
// member ids.
func NewLoopbackTreeParent(parent []int, opts ...Option) (*TCPTree, error) {
	if len(parent) < 2 {
		return nil, errors.New("transport: need at least 2 nodes")
	}
	listeners, peers, err := bindLoopback(len(parent))
	if err != nil {
		return nil, err
	}
	cfg := TCPConfig{Peers: peers, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	for _, opt := range opts {
		opt(&cfg)
	}
	t, err := NewTCPTree(cfg, parent)
	if err != nil {
		for _, l := range listeners {
			l.Close()
		}
		return nil, err
	}
	t.listeners = listeners
	return t, nil
}

// Open rejects ring use; a TCPTree serves Config.Topology == TopologyTree.
func (t *TCPTree) Open(id int) (runtime.Link, error) {
	return nil, errors.New("transport: TCPTree requires Config.Topology == TopologyTree")
}

// OpenTree binds member id's listener if it has children (unless
// pre-bound), starts its accept loop and — unless id is the root — its
// dialer to the parent, and returns the link.
func (t *TCPTree) OpenTree(id int) (runtime.TreeLink, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("transport: closed")
	}
	if id < 0 || id >= len(t.cfg.Peers) {
		return nil, fmt.Errorf("transport: member %d out of range [0,%d)", id, len(t.cfg.Peers))
	}
	if t.links[id] != nil {
		return nil, fmt.Errorf("transport: member %d already open", id)
	}
	kids := t.tree.Children[id]
	var ln net.Listener
	if len(kids) > 0 {
		ln = t.listeners[id]
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", t.cfg.Peers[id])
			if err != nil {
				return nil, fmt.Errorf("transport: listen %s: %w", t.cfg.Peers[id], err)
			}
			t.listeners[id] = ln
		}
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	l := &tcpTreeLink{
		t:      t,
		id:     id,
		parent: t.tree.Parent[id],
		ln:     ln,
		kidIdx: make(map[int]int, len(kids)),
		down:   make(chan runtime.Message, 1),
		// Shared across children, sized like the channel transport's up
		// mailbox: two slots per child absorb a full round of announcements.
		up:         make(chan runtime.UpMessage, 2*len(kids)+2),
		outUp:      make(chan runtime.UpMessage, 1),
		outDown:    make([]chan runtime.Message, len(kids)),
		inConns:    make(map[int]net.Conn, len(kids)),
		done:       make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	for i, kid := range kids {
		l.kidIdx[kid] = i
		l.outDown[i] = make(chan runtime.Message, 1)
	}
	t.links[id] = l
	if ln != nil {
		l.wg.Add(1)
		go l.acceptLoop()
	}
	if l.parent >= 0 {
		l.wg.Add(1)
		go l.dialLoop()
	}
	return l, nil
}

// Close tears down every link, listener and connection.
func (t *TCPTree) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	links := append([]*tcpTreeLink(nil), t.links...)
	listeners := append([]net.Listener(nil), t.listeners...)
	t.mu.Unlock()
	for _, l := range links {
		if l != nil {
			l.Close()
		}
	}
	for _, ln := range listeners {
		if ln != nil {
			ln.Close() // pre-bound listeners of leaves / never-opened members
		}
	}
	t.stats.unregister()
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCPTree) Stats() TCPStats { return t.stats.snapshot() }

// Digest returns the configuration digest this transport sends (and
// expects) in hello frames.
func (t *TCPTree) Digest() uint64 { return t.digest }

// BreakLinks force-closes member id's current connections (to its parent
// and from all its children), simulating a network blip. Test hook.
func (t *TCPTree) BreakLinks(id int) {
	t.mu.Lock()
	var l *tcpTreeLink
	if id >= 0 && id < len(t.links) {
		l = t.links[id]
	}
	t.mu.Unlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	for _, c := range l.inConns {
		c.Close()
	}
	if l.outConn != nil {
		l.outConn.Close()
	}
	l.mu.Unlock()
}

// tcpTreeLink is one member's attachment to its tree edges over sockets.
type tcpTreeLink struct {
	t      *TCPTree
	id     int
	parent int          // -1 at the root
	ln     net.Listener // nil at leaves
	kidIdx map[int]int  // child id → index into outDown

	down chan runtime.Message   // from parent, latest wins
	up   chan runtime.UpMessage // from children, shared mailbox

	outUp   chan runtime.UpMessage // to parent, latest wins
	outDown []chan runtime.Message // to each child, latest wins

	mu      sync.Mutex
	inConns map[int]net.Conn // accepted, one per child
	outConn net.Conn         // dialed, to parent

	done       chan struct{}
	dialCtx    context.Context
	dialCancel context.CancelFunc
	closeOnce  sync.Once
	wg         sync.WaitGroup
}

func (l *tcpTreeLink) SendDown(child int, m runtime.Message) {
	i, ok := l.kidIdx[child]
	if !ok {
		return
	}
	dst := l.outDown[i]
	select {
	case <-dst:
	default:
	}
	select {
	case dst <- m:
	default:
	}
}

func (l *tcpTreeLink) SendUp(m runtime.UpMessage) {
	if l.parent < 0 {
		return
	}
	select {
	case <-l.outUp:
	default:
	}
	select {
	case l.outUp <- m:
	default:
	}
}

func (l *tcpTreeLink) Down() <-chan runtime.Message { return l.down }
func (l *tcpTreeLink) Up() <-chan runtime.UpMessage { return l.up }

func (l *tcpTreeLink) InjectDown(m runtime.Message) bool {
	select {
	case l.down <- m:
		return true
	default:
		return false
	}
}

func (l *tcpTreeLink) InjectUp(m runtime.UpMessage) bool {
	select {
	case l.up <- m:
		return true
	default:
		return false
	}
}

func (l *tcpTreeLink) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.dialCancel()
		if l.ln != nil {
			l.ln.Close()
		}
		l.mu.Lock()
		for _, c := range l.inConns {
			c.Close()
		}
		if l.outConn != nil {
			l.outConn.Close()
		}
		l.mu.Unlock()
	})
	l.wg.Wait()
	return nil
}

func (l *tcpTreeLink) closedNow() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// --- incoming side: the children's connections ---

func (l *tcpTreeLink) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			if l.closedNow() {
				return
			}
			select {
			case <-l.done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if !l.t.stats.admitPending(l.t.cfg.MaxPending) {
			c.Close()
			continue
		}
		l.wg.Add(1)
		go l.handleIn(c)
	}
}

// handleIn verifies the hello handshake — the dialer must be one of this
// member's children — then serves up-frames from it until the connection
// dies. A verified connection replaces that child's previous one, which is
// how a restarted child reattaches.
func (l *tcpTreeLink) handleIn(c net.Conn) {
	defer l.wg.Done()
	fr := NewFrameReader(c, 256)
	from, err := readHello(fr, c, l.t.cfg.HandshakeTimeout, l.t.digest, &l.t.stats)
	l.t.stats.releasePending()
	var kid int
	known := false
	if err == nil {
		kid, known = l.kidIdx[from]
	}
	if err != nil || !known {
		l.t.stats.handshakeRejects.Add(1)
		l.t.cfg.Logf("transport: member %d rejected connection from %v: from=%d err=%v", l.id, c.RemoteAddr(), from, err)
		c.Close()
		return
	}
	keepAlive(c)
	l.t.stats.accepts.Add(1)
	l.setInConn(from, c)
	dead := make(chan struct{})
	l.wg.Add(1)
	go l.downWriter(c, l.outDown[kid], dead)
	l.serveUp(c, fr, from, dead) // returns when the connection dies
}

func (l *tcpTreeLink) setInConn(from int, c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closedNow() {
		// Close already swept the registered connections; a connection
		// registered now would never be closed and would pin serveUp (and
		// the link's WaitGroup) forever. Close's sweep runs under this
		// mutex after done is closed, so the check cannot be stale.
		c.Close()
		return
	}
	if old := l.inConns[from]; old != nil {
		old.Close() // replaced by the newer connection
	}
	l.inConns[from] = c
}

// serveUp reads FrameUp frames from child `from` until the connection
// errors, then closes it. Bursts are drained keeping only the newest frame,
// like the ring's serveIn. The in-band Child field is cross-checked against
// the hello identity: a mismatch is a codec error (detected corruption),
// not a protocol message.
func (l *tcpTreeLink) serveUp(c net.Conn, fr *FrameReader, from int, dead chan struct{}) {
	defer close(dead)
	defer c.Close()
	for {
		typ, payload, err := fr.Read()
		if err != nil {
			l.connFailed("read from child", err)
			return
		}
		var m runtime.UpMessage
		have := false
		for {
			switch typ {
			case FrameUp:
				g, mm, err := DecodeUp(payload)
				if err == nil && g != l.t.cfg.Group {
					err = fmt.Errorf("%w: up frame for group %d on a group-%d link", ErrCodec, g, l.t.cfg.Group)
				}
				if err != nil {
					l.connFailed("decode up", err)
					return
				}
				if mm.Child != from {
					l.connFailed("decode up", fmt.Errorf("%w: in-band child %d on connection from %d", ErrCodec, mm.Child, from))
					return
				}
				l.t.stats.framesRecv.Add(1)
				m, have = mm, true
			case FrameHello:
				// Redundant hello: harmless, ignore.
			default:
				l.connFailed("unexpected frame", fmt.Errorf("%w: type %d from child", ErrCodec, typ))
				return
			}
			if !fr.FrameBuffered() {
				break
			}
			if typ, payload, err = fr.Read(); err != nil {
				l.connFailed("read from child", err)
				return
			}
		}
		if !have {
			continue
		}
		// Shared-mailbox delivery, the channel transport's discipline:
		// send; if full, displace the oldest (a stale sibling announcement)
		// and retry; losing that race drops the message as loss.
		select {
		case l.up <- m:
			continue
		default:
		}
		select {
		case <-l.up:
		default:
		}
		select {
		case l.up <- m:
		default:
		}
	}
}

// downWriter streams the latest pending downward state to one child, with
// the same supersede-coalescing as the ring's outWriter.
func (l *tcpTreeLink) downWriter(c net.Conn, mailbox chan runtime.Message, dead chan struct{}) {
	defer l.wg.Done()
	var buf []byte
	for {
		select {
		case <-l.done:
			return
		case <-dead:
			return
		case m := <-mailbox:
			select {
			case m = <-mailbox:
			default:
			}
			buf = AppendState(buf[:0], l.t.cfg.Group, m)
			if _, err := c.Write(buf); err != nil {
				l.connFailed("write state to child", err)
				c.Close()
				return
			}
			l.t.stats.framesSent.Add(1)
		}
	}
}

// --- outgoing side: the connection to the parent ---

// dialLoop maintains the connection to the parent: dial, hello, serve until
// it dies, then redial with capped exponential backoff plus jitter. The
// jitter source is a goroutine-owned splitmix64 PRNG (internal/prng):
// single ownership is structural, with no shared generator to race on.
func (l *tcpTreeLink) dialLoop() {
	defer l.wg.Done()
	paddr := l.t.cfg.Peers[l.parent]
	rng := prng.New(int64(l.id)*1315423911 + 29)
	backoff := l.t.cfg.BaseBackoff
	for {
		if l.closedNow() {
			return
		}
		d := net.Dialer{Timeout: l.t.cfg.DialTimeout}
		c, err := d.DialContext(l.dialCtx, "tcp", paddr)
		if err != nil {
			if l.closedNow() {
				return
			}
			l.t.stats.failedDials.Add(1)
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			l.t.stats.backingOff.Add(1)
			select {
			case <-l.done:
				l.t.stats.backingOff.Add(-1)
				return
			case <-time.After(sleep):
			}
			l.t.stats.backingOff.Add(-1)
			if backoff *= 2; backoff > l.t.cfg.MaxBackoff {
				backoff = l.t.cfg.MaxBackoff
			}
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(15 * time.Second)
		}
		if _, err := c.Write(AppendHello(nil, l.id, l.t.digest)); err != nil {
			l.connFailed("write hello", err)
			c.Close()
			continue
		}
		l.t.stats.dials.Add(1)
		l.t.stats.connectedOut.Add(1)
		backoff = l.t.cfg.BaseBackoff
		l.mu.Lock()
		l.outConn = c
		l.mu.Unlock()
		dead := make(chan struct{})
		l.wg.Add(1)
		go l.downReader(c, dead)
		l.upWriter(c, dead) // returns when the connection dies or the link closes
		c.Close()
		l.t.stats.connectedOut.Add(-1)
	}
}

// upWriter streams the latest pending up-announcement to the parent, with
// supersede-coalescing into one reused buffer.
func (l *tcpTreeLink) upWriter(c net.Conn, dead chan struct{}) {
	var buf []byte
	for {
		select {
		case <-l.done:
			return
		case <-dead:
			return
		case m := <-l.outUp:
			select {
			case m = <-l.outUp:
			default:
			}
			buf = AppendUp(buf[:0], l.t.cfg.Group, m)
			if _, err := c.Write(buf); err != nil {
				l.connFailed("write up to parent", err)
				return
			}
			l.t.stats.framesSent.Add(1)
		}
	}
}

// downReader receives the parent's FrameState broadcasts; its exit (on any
// read error) marks the connection dead. Bursts drain keeping the newest.
func (l *tcpTreeLink) downReader(c net.Conn, dead chan struct{}) {
	defer l.wg.Done()
	defer close(dead)
	fr := NewFrameReader(c, 256)
	for {
		typ, payload, err := fr.Read()
		if err != nil {
			l.connFailed("read from parent", err)
			return
		}
		var m runtime.Message
		have := false
		for {
			switch typ {
			case FrameState:
				g, mm, err := DecodeState(payload)
				if err == nil && g != l.t.cfg.Group {
					err = fmt.Errorf("%w: state frame for group %d on a group-%d link", ErrCodec, g, l.t.cfg.Group)
				}
				if err != nil {
					l.connFailed("decode state", err)
					return
				}
				l.t.stats.framesRecv.Add(1)
				m, have = mm, true
			case FrameHello:
				// Harmless, ignore.
			default:
				l.connFailed("unexpected frame", fmt.Errorf("%w: type %d from parent", ErrCodec, typ))
				return
			}
			if !fr.FrameBuffered() {
				break
			}
			if typ, payload, err = fr.Read(); err != nil {
				l.connFailed("read from parent", err)
				return
			}
		}
		if !have {
			continue
		}
		select {
		case <-l.down:
		default:
		}
		select {
		case l.down <- m:
		default:
		}
	}
}

// connFailed accounts one connection failure (see tcpLink.connFailed).
func (l *tcpTreeLink) connFailed(what string, err error) {
	if l.closedNow() {
		return
	}
	if errors.Is(err, ErrCodec) {
		l.t.stats.decodeErrors.Add(1)
	}
	l.t.stats.connDrops.Add(1)
	l.t.cfg.Logf("transport: member %d: %s: %v", l.id, what, err)
}
