package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/tokenring"
)

// openTree opens every member of a loopback binary-heap tree and returns
// the links.
func openTree(t *testing.T, n int, opts ...Option) (*TCPTree, []runtime.TreeLink) {
	t.Helper()
	tr, err := NewLoopbackTree(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	links := make([]runtime.TreeLink, n)
	for j := 0; j < n; j++ {
		links[j], err = tr.OpenTree(j)
		if err != nil {
			t.Fatalf("OpenTree(%d): %v", j, err)
		}
	}
	return tr, links
}

// Down-frames flow parent→child and up-frames child→parent on the same
// dialed connection, for every edge of a 7-member binary tree.
func TestTreeDelivery(t *testing.T) {
	const n = 7
	tr, links := openTree(t, n)

	for child := 1; child < n; child++ {
		parent := tr.tree.Parent[child]

		// Parent → child: resend until the child's dialed connection is up.
		dm := runtime.Message{SN: tokenring.SN(child), CP: core.Execute, PH: child % 3}
		dm.Sum = dm.Checksum()
		deadline := time.Now().Add(5 * time.Second)
		for {
			links[parent].SendDown(child, dm)
			select {
			case got := <-links[child].Down():
				if got != dm {
					t.Fatalf("child %d received %+v, want %+v", child, got, dm)
				}
			case <-time.After(2 * time.Millisecond):
				if time.Now().Before(deadline) {
					continue
				}
				t.Fatalf("down state never reached child %d", child)
			}
			break
		}

		// Child → parent on the same connection.
		um := runtime.UpMessage{Child: child, SN: tokenring.SN(child), CP: core.Success, PH: 1, AckSN: tokenring.SN(child), AckCP: core.Success, AckPH: 1}
		um.Sum = um.Checksum()
		deadline = time.Now().Add(5 * time.Second)
		for {
			links[child].SendUp(um)
			select {
			case got := <-links[parent].Up():
				if got.Child != child {
					continue // a sibling's retransmission; keep waiting
				}
				if got != um {
					t.Fatalf("parent %d received %+v, want %+v", parent, got, um)
				}
			case <-time.After(2 * time.Millisecond):
				if time.Now().Before(deadline) {
					continue
				}
				t.Fatalf("up state never reached parent of %d", child)
			}
			break
		}
	}
}

// A stranger (or a non-child member) connecting to an internal node is
// rejected at the handshake.
func TestTreeHandshakeRejectsNonChild(t *testing.T) {
	tr, _ := openTree(t, 7)

	addr0 := tr.cfg.Peers[0] // root accepts only children 1 and 2
	for _, intruder := range [][]byte{
		AppendHello(nil, 5, tr.Digest()),       // not a child of the root
		AppendHello(nil, 1, tr.Digest()^0xbad), // right child, wrong config digest
		AppendFrame(nil, FrameTop, nil),        // not a hello at all
		{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},   // garbage bytes
	} {
		c, err := net.Dial("tcp", addr0)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(intruder)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Error("acceptor kept an unauthenticated connection open")
		}
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().HandshakeRejects < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("handshake rejects = %d, want 4", tr.Stats().HandshakeRejects)
		}
		time.Sleep(time.Millisecond)
	}
	if got := tr.Stats().DigestRejects; got != 1 {
		t.Errorf("digest rejects = %d, want 1", got)
	}
}

// An up-frame whose in-band Child disagrees with the hello identity is
// detected corruption: the connection is dropped, the frame discarded.
func TestTreeChildIDCrossCheck(t *testing.T) {
	tr, links := openTree(t, 3)

	// Pose as child 1 dialing the root, then claim to be child 2 in-band.
	c, err := net.Dial("tcp", tr.cfg.Peers[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	forged := runtime.UpMessage{Child: 2, SN: 1, CP: core.Success, PH: 0}
	forged.Sum = forged.Checksum()
	c.Write(AppendHello(nil, 1, tr.Digest()))
	c.Write(AppendUp(nil, tr.cfg.Group, forged))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("acceptor survived a cross-check violation")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().DecodeErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cross-check violation not accounted as a decode error")
		}
		time.Sleep(time.Millisecond)
	}
	// The forged frame must not have surfaced.
	select {
	case m := <-links[0].Up():
		t.Errorf("forged up-message delivered: %+v", m)
	default:
	}
}

// A forcibly broken tree edge redials and delivery resumes.
func TestTreeReconnectAfterBreak(t *testing.T) {
	tr, links := openTree(t, 3)

	send := func(sn tokenring.SN) runtime.UpMessage {
		um := runtime.UpMessage{Child: 1, SN: sn, CP: core.Execute, PH: 0}
		um.Sum = um.Checksum()
		links[1].SendUp(um)
		return um
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		send(1)
		select {
		case <-links[0].Up():
		case <-time.After(2 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("initial connection never delivered")
		}
		break
	}
	dialsBefore := tr.Stats().Dials

	tr.BreakLinks(1) // closes child 1's dialed connection to the root

	deadline = time.Now().Add(10 * time.Second)
	for {
		want := send(7)
		select {
		case got := <-links[0].Up():
			if got == want {
				if redials := tr.Stats().Dials - dialsBefore; redials == 0 {
					t.Error("delivery resumed without a redial being counted")
				}
				return
			}
		case <-time.After(2 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("delivery did not resume after the link was broken")
		}
	}
}

// Constructor and Open validation.
func TestTreeOpenValidation(t *testing.T) {
	tr, _ := openTree(t, 3)
	if _, err := tr.OpenTree(0); err == nil {
		t.Error("double OpenTree(0) succeeded")
	}
	if _, err := tr.OpenTree(-1); err == nil {
		t.Error("OpenTree(-1) succeeded")
	}
	if _, err := tr.OpenTree(3); err == nil {
		t.Error("OpenTree(3) succeeded")
	}
	if _, err := tr.Open(0); err == nil {
		t.Error("ring Open succeeded on a tree transport")
	}
	if _, err := NewTCPTree(TCPConfig{Peers: []string{"a", "b"}}, []int{-1}); err == nil {
		t.Error("NewTCPTree with mismatched peers/parent succeeded")
	}
	if _, err := NewTCPTree(TCPConfig{Peers: []string{"a", "b"}}, []int{-1, 5}); err == nil {
		t.Error("NewTCPTree with an invalid parent vector succeeded")
	}
	if _, err := NewLoopbackTree(1); err == nil {
		t.Error("NewLoopbackTree(1) succeeded")
	}
}

// An end-to-end tree barrier over TCP: the real protocol engine drives
// loopback sockets through the double-tree refinement, completing barriers
// under injected corruption and a mid-run connection break.
func TestBarrierOverTCPTree(t *testing.T) {
	const (
		n       = 7
		nPhases = 2
		passes  = 30
	)
	tr, err := NewLoopbackTree(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runtime.New(runtime.Config{
		Participants: n,
		NPhases:      nPhases,
		Topology:     runtime.TopologyTree,
		Transport:    tr,
		Resend:       200 * time.Microsecond,
		CorruptRate:  0.01,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		b.Stop()
		tr.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < passes; k++ {
				if k == passes/2 && id == 0 {
					tr.BreakLinks(3) // mid-run network blip on a leaf edge
				}
				ph, err := b.Await(ctx, id)
				if errors.Is(err, runtime.ErrReset) {
					k--
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("member %d pass %d: %w", id, k, err)
					return
				}
				if want := (k + 1) % nPhases; ph != want {
					errs <- fmt.Errorf("member %d pass %d: phase %d, want %d", id, k, ph, want)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.FramesRecv == 0 {
		t.Error("barrier completed without any TCP frames — transport not exercised")
	}
	t.Logf("transport stats: %+v", st)
}
