package conformance

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

var engineTargets = []string{"cb", "rb", "tb", "dt", "mb"}

// Schedules survive the round trip through their replay string.
func TestScheduleStringRoundTrip(t *testing.T) {
	cases := []Schedule{
		{Target: "cb", NProcs: 4, NPhases: 3, Seed: 17, Sched: SchedRandom,
			Ops: []Op{{Kind: OpStep}, {Kind: OpStep}, {Kind: OpReset, Proc: 2}, {Kind: OpStep}}},
		{Target: "rb", NProcs: 5, NPhases: 2, Seed: -3, Sched: SchedPick,
			Ops: []Op{{Kind: OpStep, Arg: 12}, {Kind: OpCrash, Proc: 0}, {Kind: OpStep, Arg: 7}, {Kind: OpRestart, Proc: 0}}},
		{Target: TargetRuntime, NProcs: 3, NPhases: 4, Seed: 99, Loss: 0.05, Corrupt: 0.125,
			Ops: []Op{{Kind: OpSpurious, Proc: 1, Arg: 42}, {Kind: OpStep}, {Kind: OpScramble, Proc: 2, Arg: -8}}},
		{Target: "mb", NProcs: 2, NPhases: 2, Seed: 0, Sched: SchedMaxParallel, Ops: nil},
	}
	for _, want := range cases {
		text := want.String()
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got.String() != text {
			t.Errorf("round trip changed: %q -> %q", text, got.String())
		}
		if !reflect.DeepEqual(got.Ops, want.Ops) {
			t.Errorf("%q: ops %v -> %v", text, want.Ops, got.Ops)
		}
	}
	for _, bad := range []string{"", "cb", "cb:n=1:ph=3:seed=0:sched=random:ops=", "cb:n=4:ph=3:seed=0:sched=nope:ops=", "cb:n=4:ph=3:seed=0:sched=random:ops=x3"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

// Generate is a pure function of (cfg, seed), and Run is a pure function of
// the schedule on engine targets: the seed alone reproduces the verdict.
func TestDeterministicReplay(t *testing.T) {
	for _, tgt := range engineTargets {
		cfg := GenConfig{Target: tgt, NProcs: 4, NPhases: 3, Ops: 150,
			FaultRate: 0.12, Scrambles: true, Crashes: true}
		s1 := Generate(cfg, 42)
		s2 := Generate(cfg, 42)
		if s1.String() != s2.String() {
			t.Fatalf("%s: Generate not deterministic:\n%s\n%s", tgt, s1.String(), s2.String())
		}
		v1, v2 := Run(s1), Run(s1)
		if v1.String() != v2.String() || v1.Steps != v2.Steps || v1.Barriers != v2.Barriers {
			t.Fatalf("%s: Run not deterministic: %v vs %v", tgt, v1, v2)
		}
		// The replay string alone carries everything needed.
		parsed, err := Parse(s1.String())
		if err != nil {
			t.Fatal(err)
		}
		if v3 := Run(parsed); v3.String() != v1.String() {
			t.Fatalf("%s: replay from string diverged: %v vs %v", tgt, v3, v1)
		}
	}
}

// Every engine refinement masks detectable faults (resets, crashes,
// spurious-free schedules) under every scheduler.
func TestEngineTargetsMaskDetectable(t *testing.T) {
	for _, tgt := range engineTargets {
		for _, sched := range []SchedKind{SchedRandom, SchedRoundRobin, SchedMaxParallel, SchedPick} {
			for seed := int64(1); seed <= 5; seed++ {
				s := Generate(GenConfig{Target: tgt, NProcs: 4, NPhases: 3, Sched: sched,
					Ops: 200, FaultRate: 0.1, Crashes: true}, seed)
				if v := Run(s); !v.OK {
					t.Errorf("%s/%v seed=%d: %v\n  replay: %s", tgt, sched, seed, v, s.String())
				}
			}
		}
	}
}

// Every engine refinement stabilizes from undetectable faults.
func TestEngineTargetsStabilize(t *testing.T) {
	for _, tgt := range engineTargets {
		for seed := int64(1); seed <= 5; seed++ {
			s := Generate(GenConfig{Target: tgt, NProcs: 4, NPhases: 3, Sched: SchedRandom,
				Ops: 200, FaultRate: 0.15, Scrambles: true, Crashes: true}, seed)
			if v := Run(s); !v.OK {
				t.Errorf("%s seed=%d: %v\n  replay: %s", tgt, seed, v, s.String())
			} else if s.HasUndetectable() && !v.Stabilized {
				t.Errorf("%s seed=%d: verdict OK but not marked stabilized", tgt, seed)
			}
		}
	}
}

// The live goroutine barrier passes both tolerance checks, including under
// message loss, corruption, resets, scrambles and spurious messages.
func TestRuntimeTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for seed := int64(1); seed <= 3; seed++ {
		// Resets plus message loss and detected corruption: masking.
		s := Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 60,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, seed)
		if v := Run(s); !v.OK {
			t.Errorf("masking seed=%d: %v\n  replay: %s", seed, v, s.String())
		}
		s = Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 60,
			FaultRate: 0.15, Scrambles: true, Spurious: true, Loss: 0.05, Corrupt: 0.05}, seed)
		if v := Run(s); !v.OK {
			t.Errorf("stabilizing seed=%d: %v\n  replay: %s", seed, v, s.String())
		}
	}
}

// The tcp target runs the identical protocol over loopback sockets: a
// schedule ported between the channel and TCP transports must produce the
// same verdict — including a schedule drawn exactly as FuzzRuntime draws
// it, so any corpus entry is portable between the two fuzz targets.
func TestTCPTargetMatchesChannelTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	schedules := []Schedule{
		// Masking mix: resets over lossy, corrupting links.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, 11),
		// Stabilizing mix: scrambles and spurious messages on top.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 3, NPhases: 2, Ops: 40,
			FaultRate: 0.15, Scrambles: true, Spurious: true, Loss: 0.05, Corrupt: 0.05}, 12),
		// A byte-derived schedule, as the fuzzers construct them.
		FromBytes(TargetRuntime, 13, []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40}),
	}
	for i, s := range schedules {
		s.Target = TargetRuntime
		vChan := Run(s)
		s.Target = TargetTCP
		vTCP := Run(s)
		if vChan.OK != vTCP.OK || vChan.Reason != vTCP.Reason {
			t.Errorf("schedule %d: verdicts diverge across transports:\n  channel: %v\n  tcp:     %v\n  replay: %s",
				i, vChan, vTCP, s.String())
		}
		if !vChan.OK {
			t.Errorf("schedule %d: expected OK on both transports, got %v", i, vChan)
		}
		if s.HasUndetectable() && (vChan.Stabilized != vTCP.Stabilized) {
			t.Errorf("schedule %d: stabilization verdicts diverge: channel=%v tcp=%v",
				i, vChan.Stabilized, vTCP.Stabilized)
		}
	}
}

// The tree topology passes both tolerance checks, like the ring.
func TestTreeTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for seed := int64(1); seed <= 3; seed++ {
		// Resets plus message loss and detected corruption: masking.
		s := Generate(GenConfig{Target: TargetTree, NProcs: 5, NPhases: 3, Ops: 60,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, seed)
		if v := Run(s); !v.OK {
			t.Errorf("masking seed=%d: %v\n  replay: %s", seed, v, s.String())
		}
		s = Generate(GenConfig{Target: TargetTree, NProcs: 5, NPhases: 3, Ops: 60,
			FaultRate: 0.15, Scrambles: true, Spurious: true, Loss: 0.05, Corrupt: 0.05}, seed)
		if v := Run(s); !v.OK {
			t.Errorf("stabilizing seed=%d: %v\n  replay: %s", seed, v, s.String())
		}
	}
}

// A schedule ported between the ring and tree topologies must produce the
// same verdict: the topology is a refinement choice, not an observable.
// Fault-free schedules check pure barrier equivalence; the masking and
// byte-derived mixes check that the tree masks the same fault classes.
func TestTreeTargetMatchesChannelTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	schedules := []Schedule{
		// Fault-free: both topologies must run spec-clean barriers.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40}, 10),
		Generate(GenConfig{Target: TargetRuntime, NProcs: 7, NPhases: 2, Ops: 40}, 11),
		// Masking mix: resets over lossy, corrupting links.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, 12),
		// A byte-derived schedule, as the fuzzers construct them.
		FromBytes(TargetRuntime, 13, []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40}),
	}
	for i, s := range schedules {
		s.Target = TargetRuntime
		vRing := Run(s)
		s.Target = TargetTree
		vTree := Run(s)
		if vRing.OK != vTree.OK || vRing.Reason != vTree.Reason {
			t.Errorf("schedule %d: verdicts diverge across topologies:\n  ring: %v\n  tree: %v\n  replay: %s",
				i, vRing, vTree, s.String())
		}
		if !vRing.OK {
			t.Errorf("schedule %d: expected OK on both topologies, got %v", i, vRing)
		}
		if s.HasUndetectable() && (vRing.Stabilized != vTree.Stabilized) {
			t.Errorf("schedule %d: stabilization verdicts diverge: ring=%v tree=%v",
				i, vRing.Stabilized, vTree.Stabilized)
		}
	}
}

// A schedule ported between the ring and the hybrid topology must produce
// the same verdict: fusing members pairwise onto per-host schedulers is a
// deployment choice, not an observable. Fault-free schedules check pure
// barrier equivalence; the masking and byte-derived mixes check that the
// hybrid shape masks the same fault classes — including resets landing on
// fused (non-root) members whose faults never touch a cross-host edge.
func TestHybridTargetMatchesChannelTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	schedules := []Schedule{
		// Fault-free: both topologies must run spec-clean barriers. The odd
		// roster leaves one host with a single member.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40}, 10),
		Generate(GenConfig{Target: TargetRuntime, NProcs: 7, NPhases: 2, Ops: 40}, 11),
		// Masking mix: resets over lossy, corrupting links.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, 12),
		// A byte-derived schedule, as the fuzzers construct them.
		FromBytes(TargetRuntime, 13, []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40}),
	}
	for i, s := range schedules {
		s.Target = TargetRuntime
		vRing := Run(s)
		s.Target = TargetHybrid
		vHybrid := Run(s)
		if vRing.OK != vHybrid.OK || vRing.Reason != vHybrid.Reason {
			t.Errorf("schedule %d: verdicts diverge across topologies:\n  ring:   %v\n  hybrid: %v\n  replay: %s",
				i, vRing, vHybrid, s.String())
		}
		if !vRing.OK {
			t.Errorf("schedule %d: expected OK on both topologies, got %v", i, vRing)
		}
		if s.HasUndetectable() && (vRing.Stabilized != vHybrid.Stabilized) {
			t.Errorf("schedule %d: stabilization verdicts diverge: ring=%v hybrid=%v",
				i, vRing.Stabilized, vHybrid.Stabilized)
		}
	}
}

// All five refinements are observationally equivalent on fault-free
// computations: the same sequence of successful barrier phases.
func TestRefinementTraceEquivalence(t *testing.T) {
	const n, nPhases, steps = 4, 3, 4000
	var wantPhases []int
	for _, tgt := range engineTargets {
		var trace []core.Event
		p, err := NewTarget(tgt, n, nPhases, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		p.SetSink(func(e core.Event) { trace = append(trace, e) })
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < steps; i++ {
			if !p.Step(SchedRandom, rng, 0) {
				t.Fatalf("%s: deadlock at step %d", tgt, i)
			}
		}
		phases, err := core.SuccessPhases(trace, n, nPhases)
		if err != nil {
			t.Fatalf("%s: fault-free trace violates the spec: %v", tgt, err)
		}
		if len(phases) < 3 {
			t.Fatalf("%s: only %d successful barriers in %d steps", tgt, len(phases), steps)
		}
		for i, ph := range phases {
			if ph != i%nPhases {
				t.Fatalf("%s: barrier %d succeeded at phase %d, want %d", tgt, i, ph, i%nPhases)
			}
		}
		if wantPhases == nil {
			wantPhases = phases
		}
		// Lengths may differ (different step budgets per barrier), but the
		// common prefix must be identical across refinements.
		m := min(len(phases), len(wantPhases))
		if !reflect.DeepEqual(phases[:m], wantPhases[:m]) {
			t.Errorf("%s: success-phase history diverges from %s: %v vs %v",
				tgt, engineTargets[0], phases[:m], wantPhases[:m])
		}
	}
}

// mislabeledFaultTarget is a deliberately broken refinement: its detectable
// fault injection actually scrambles state undetectably (a mislabeled
// fault), so schedules promised masking tolerance violate the spec.
type mislabeledFaultTarget struct{ Target }

func (m mislabeledFaultTarget) InjectDetectable(j int) { m.Target.InjectUndetectable(j) }

// The harness catches a planted bug, and shrinking is deterministic: the
// same failing schedule always reduces to the same minimal counterexample
// with the same verdict.
func TestPlantedBugDetectedAndShrunk(t *testing.T) {
	Register("bug-cb", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := NewTarget("cb", n, nPhases, rng)
		if err != nil {
			return nil, err
		}
		return mislabeledFaultTarget{p}, nil
	})
	defer func() { delete(builders, "bug-cb") }()

	var failing Schedule
	found := false
	for seed := int64(1); seed <= 30 && !found; seed++ {
		s := Generate(GenConfig{Target: "bug-cb", NProcs: 4, NPhases: 3,
			Sched: SchedRandom, Ops: 150, FaultRate: 0.15}, seed)
		if s.CountKind(OpReset) == 0 {
			continue
		}
		if v := Run(s); !v.OK {
			failing, found = s, true
		}
	}
	if !found {
		t.Fatal("harness failed to detect the planted mislabeled-fault bug in 30 seeds")
	}

	fails := func(c Schedule) bool { return !Run(c).OK }
	m1 := Shrink(failing, fails)
	m2 := Shrink(failing, fails)
	if m1.String() != m2.String() {
		t.Fatalf("shrinking not deterministic:\n%s\n%s", m1.String(), m2.String())
	}
	if !fails(m1) {
		t.Fatalf("shrunk schedule no longer fails: %s", m1.String())
	}
	if len(m1.Ops) >= len(failing.Ops) {
		t.Errorf("shrink made no progress: %d -> %d ops", len(failing.Ops), len(m1.Ops))
	}
	// Local minimality: every remaining op is necessary.
	for i := range m1.Ops {
		c := m1
		c.Ops = append(append([]Op{}, m1.Ops[:i]...), m1.Ops[i+1:]...)
		if fails(c) {
			t.Fatalf("shrunk schedule not minimal: op %d removable from %s", i, m1.String())
		}
	}
	// The minimal counterexample replays from its string to the same verdict.
	parsed, err := Parse(m1.String())
	if err != nil {
		t.Fatal(err)
	}
	if v1, v2 := Run(m1), Run(parsed); v1.String() != v2.String() {
		t.Fatalf("minimal counterexample replay diverged: %v vs %v", v1, v2)
	}
	t.Logf("planted bug shrunk %d -> %d ops: %s", len(failing.Ops), len(m1.Ops), m1.String())
}

// FromBytes is total: arbitrary bytes map to schedules that run to a
// verdict without panicking, and the derived schedule replays via String.
func TestFromBytesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		for _, tgt := range engineTargets {
			s := FromBytes(tgt, int64(i), data)
			v := Run(s)
			parsed, err := Parse(s.String())
			if err != nil {
				t.Fatalf("FromBytes schedule does not round-trip: %v (%s)", err, s.String())
			}
			if v2 := Run(parsed); v2.String() != v.String() {
				t.Fatalf("byte-derived schedule replay diverged: %v vs %v\n  %s", v, v2, s.String())
			}
		}
	}
}

// The mux target multiplexes the scheduled barrier with background tenant
// groups on shared connections: a schedule ported between the channel
// transport and the mux must produce the same verdict — multi-tenancy is
// a transport refinement, not an observable.
func TestMuxTargetMatchesChannelTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	schedules := []Schedule{
		// Masking mix: resets over lossy, corrupting links.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 40,
			FaultRate: 0.15, Loss: 0.05, Corrupt: 0.05}, 21),
		// Stabilizing mix: scrambles and spurious messages on top.
		Generate(GenConfig{Target: TargetRuntime, NProcs: 3, NPhases: 2, Ops: 40,
			FaultRate: 0.15, Scrambles: true, Spurious: true, Loss: 0.05, Corrupt: 0.05}, 22),
		// A byte-derived schedule, as the fuzzers construct them.
		FromBytes(TargetRuntime, 23, []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40}),
	}
	for i, s := range schedules {
		s.Target = TargetRuntime
		vChan := Run(s)
		s.Target = TargetMux
		vMux := Run(s)
		if vChan.OK != vMux.OK || vChan.Reason != vMux.Reason {
			t.Errorf("schedule %d: verdicts diverge across transports:\n  channel: %v\n  mux:     %v\n  replay: %s",
				i, vChan, vMux, s.String())
		}
		if !vChan.OK {
			t.Errorf("schedule %d: expected OK on both transports, got %v", i, vChan)
		}
		if s.HasUndetectable() && (vChan.Stabilized != vMux.Stabilized) {
			t.Errorf("schedule %d: stabilization verdicts diverge: channel=%v mux=%v",
				i, vChan.Stabilized, vMux.Stabilized)
		}
	}
}
