// Package conformance is a randomized fault-schedule fuzzer for every
// refinement of the barrier-synchronization specification in this
// repository: programs CB, RB, TB (ring-reading tree), DT (double tree)
// and MB on the guarded-command engine, and the goroutine runtime barrier.
//
// The harness closes the gap between the paper's refinement chain and the
// per-package tests: each program is only as trustworthy as the fault
// schedules it has been exercised under, and hand-picked schedules miss
// exactly the interleavings where refinement bugs hide. Here a schedule —
// scheduler steps interleaved with detectable resets, undetectable
// scrambles, crash/restart gates and (for the runtime) spurious messages —
// is an explicit, serializable value:
//
//   - Generate derives a schedule deterministically from a seed;
//   - FromBytes derives one from fuzzer-provided bytes (go test -fuzz);
//   - Run executes a schedule against its target and returns a Verdict,
//     judged by the shared core.SpecChecker under the tolerance the paper
//     promises for the schedule's fault mix (masking for detectable-only,
//     stabilizing once undetectable faults appear);
//   - Shrink reduces a failing schedule to a minimal counterexample;
//   - Schedule.String / Parse round-trip a schedule through a compact
//     text form, so any failure is replayed bit-for-bit from one line.
//
// Determinism contract: for the guarded-engine targets, Run is a pure
// function of the Schedule value — the program's internal randomness and
// the scheduler's choices are both derived from Schedule.Seed. The
// runtime target executes real goroutines against wall-clock pacing, so
// its schedule derivation is deterministic while its interleavings are
// not; its verdict therefore uses liveness deadlines and trace-suffix
// stabilization checks rather than step-exact replay.
package conformance

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// OpKind enumerates the operations a fault schedule is made of.
type OpKind uint8

const (
	// OpStep executes one scheduler step. Arg selects the action when the
	// schedule uses the adversarial SchedPick scheduler; the other
	// schedulers ignore it. The runtime target interprets a step as a
	// pacing delay (real time during which the ring runs freely).
	OpStep OpKind = iota
	// OpReset injects a detectable fault (the paper's ph,cp := ?,error) at
	// process Proc.
	OpReset
	// OpScramble injects an undetectable fault (all protocol variables :=
	// arbitrary domain values) at process Proc. Arg seeds the runtime
	// barrier's scramble; engines draw from the program rng.
	OpScramble
	// OpCrash takes process Proc's crash gate down (the paper's auxiliary
	// variable up := false): the process executes no actions. Engine
	// targets only.
	OpCrash
	// OpRestart brings process Proc back up. Per Section 7, a restarted
	// process resumes with a reset state, so the runner applies a
	// detectable fault alongside wherever the not-all-corrupted discipline
	// allows it.
	OpRestart
	// OpSpurious delivers an arbitrary well-formed protocol message to
	// process Proc ("unexpected message reception"). Runtime target only;
	// Arg seeds the message content. A well-formed forgery passes the
	// receiver's integrity check, so this is an undetectable fault: fuzzing
	// showed a single spurious message can propagate a forged state through
	// the ring and transiently complete a barrier at the wrong phase before
	// the genuine retransmission overrides it.
	OpSpurious
	// OpKill tears down process Proc's entire stack — every group member
	// it hosts plus its shared connections (SIGKILL in daemon mode). The
	// matching OpRestart brings it back with rejoin semantics. Cluster
	// harness (barrierbench) only; engine and runtime targets ignore it.
	OpKill
	// OpPartition isolates process Proc from every peer for Arg
	// milliseconds (0 = harness default), healing automatically — the
	// transport-level injected partition. Cluster harness only.
	OpPartition
	// OpChurn stops tenant group (Proc mod hosted groups) on every process
	// and immediately recreates it with rejoin semantics — group lifecycle
	// churn. Cluster harness only.
	OpChurn
	// OpByz makes process Proc act Byzantine for one frame: a well-formed,
	// valid-checksum forgery (wrong-phase replay, stale-sequence echo or
	// premature ⊤) crafted from the victim neighbor's current view and fed
	// through the genuine receive path. Runtime target only; Arg seeds the
	// forgery. Unlike OpSpurious the forgery is maximally adversarial —
	// it always passes the integrity check and sits exactly at the receive
	// window's edge — so it pins the sequence-and-sender validation layer:
	// in a byz-only schedule every accepted injection must show up in
	// barrier_rejected_frames_total, exactly once.
	OpByz

	numOpKinds
)

var opLetters = [numOpKinds]byte{'s', 'r', 'u', 'c', 'R', 'p', 'k', 'P', 'g', 'b'}

// Op is one operation of a fault schedule.
type Op struct {
	Kind OpKind
	Proc int
	Arg  int64
}

// SchedKind selects how OpStep is executed on the guarded engine.
type SchedKind uint8

const (
	// SchedRandom executes a uniformly random enabled action.
	SchedRandom SchedKind = iota
	// SchedRoundRobin executes the deterministic weakly fair interleaving.
	SchedRoundRobin
	// SchedMaxParallel executes one maximal-parallel round.
	SchedMaxParallel
	// SchedPick executes the (Arg mod enabled)-th enabled action — the
	// fully adversarial scheduler, driven by the schedule itself.
	SchedPick

	numSchedKinds
)

var schedNames = [numSchedKinds]string{"random", "roundrobin", "maxparallel", "pick"}

func (k SchedKind) String() string {
	if int(k) < len(schedNames) {
		return schedNames[k]
	}
	return fmt.Sprintf("sched(%d)", uint8(k))
}

// ParseSchedKind is the inverse of SchedKind.String.
func ParseSchedKind(s string) (SchedKind, error) {
	for i, name := range schedNames {
		if s == name {
			return SchedKind(i), nil
		}
	}
	return 0, fmt.Errorf("conformance: unknown scheduler %q", s)
}

// Schedule is a complete, replayable conformance run: a target, its
// configuration, a seed resolving all residual randomness, and the
// operation sequence.
type Schedule struct {
	Target  string
	NProcs  int
	NPhases int
	Seed    int64
	Sched   SchedKind

	// Loss and Corrupt are per-message fault rates, used by the runtime
	// target only (the engines model message faults as state faults).
	Loss    float64
	Corrupt float64

	Ops []Op
}

// HasUndetectable reports whether the schedule contains undetectable
// faults, which lowers the promised tolerance from masking to stabilizing
// (Table 1). Scrambled state is undetectable by definition; a spurious
// message counts too, because a well-formed forgery is indistinguishable
// from a genuine announcement at the receiver. A Byzantine frame is the
// strongest such forgery — the validation layer is expected to reject it,
// but the promised tolerance stays stabilizing (a persistent adversary
// replaying one forgery can still force a second sighting).
func (s *Schedule) HasUndetectable() bool {
	for _, op := range s.Ops {
		if op.Kind == OpScramble || op.Kind == OpSpurious || op.Kind == OpByz {
			return true
		}
	}
	return false
}

// CountKind returns the number of ops of the given kind.
func (s *Schedule) CountKind(k OpKind) int {
	c := 0
	for _, op := range s.Ops {
		if op.Kind == k {
			c++
		}
	}
	return c
}

// String renders the schedule in the compact replayable form accepted by
// Parse and by `conformance -replay`, e.g.
//
//	rb:n=4:ph=3:seed=17:sched=random:ops=12s,r2,3s,u1,c0,2s,R0,5s
//
// Runs of plain steps compress to `<count>s`; a step with a pick argument
// renders as `s:<arg>`; fault ops render as `<letter><proc>` with an
// optional `:<arg>`.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:n=%d:ph=%d:seed=%d:sched=%s", s.Target, s.NProcs, s.NPhases, s.Seed, s.Sched)
	if s.Loss != 0 {
		fmt.Fprintf(&b, ":loss=%g", s.Loss)
	}
	if s.Corrupt != 0 {
		fmt.Fprintf(&b, ":corrupt=%g", s.Corrupt)
	}
	b.WriteString(":ops=")
	for i := 0; i < len(s.Ops); {
		if i > 0 {
			b.WriteByte(',')
		}
		op := s.Ops[i]
		if op.Kind == OpStep && op.Arg == 0 {
			runLen := 1
			for i+runLen < len(s.Ops) && s.Ops[i+runLen].Kind == OpStep && s.Ops[i+runLen].Arg == 0 {
				runLen++
			}
			if runLen > 1 {
				fmt.Fprintf(&b, "%ds", runLen)
			} else {
				b.WriteByte('s')
			}
			i += runLen
			continue
		}
		if op.Kind == OpStep {
			fmt.Fprintf(&b, "s:%d", op.Arg)
		} else {
			fmt.Fprintf(&b, "%c%d", opLetters[op.Kind], op.Proc)
			if op.Arg != 0 {
				fmt.Fprintf(&b, ":%d", op.Arg)
			}
		}
		i++
	}
	return b.String()
}

// Parse is the inverse of Schedule.String.
func Parse(text string) (Schedule, error) {
	var s Schedule
	fields := strings.Split(strings.TrimSpace(text), ":")
	if len(fields) < 2 {
		return s, fmt.Errorf("conformance: malformed schedule %q", text)
	}
	s.Target = fields[0]
	// The ops field may itself contain ':' (pick/seed args), so rejoin
	// everything after "ops=".
	rest := fields[1:]
	for i := 0; i < len(rest); i++ {
		f := rest[i]
		if opsText, found := strings.CutPrefix(f, "ops="); found {
			opsText = strings.Join(append([]string{opsText}, rest[i+1:]...), ":")
			ops, err := parseOps(opsText)
			if err != nil {
				return s, err
			}
			s.Ops = ops
			break
		}
		key, val, found := strings.Cut(f, "=")
		if !found {
			return s, fmt.Errorf("conformance: malformed field %q", f)
		}
		var err error
		switch key {
		case "n":
			s.NProcs, err = strconv.Atoi(val)
		case "ph":
			s.NPhases, err = strconv.Atoi(val)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "sched":
			s.Sched, err = ParseSchedKind(val)
		case "loss":
			s.Loss, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			s.Corrupt, err = strconv.ParseFloat(val, 64)
		default:
			err = fmt.Errorf("conformance: unknown field %q", key)
		}
		if err != nil {
			return s, err
		}
	}
	if s.NProcs < 2 || s.NPhases < 2 {
		return s, fmt.Errorf("conformance: schedule needs n ≥ 2 and ph ≥ 2, got n=%d ph=%d", s.NProcs, s.NPhases)
	}
	return s, nil
}

func parseOps(text string) ([]Op, error) {
	if text == "" {
		return nil, nil
	}
	var ops []Op
	for _, tok := range strings.Split(text, ",") {
		if tok == "" {
			return nil, fmt.Errorf("conformance: empty op token")
		}
		// `<count>s`: a run of plain steps.
		if tok[len(tok)-1] == 's' {
			count := 1
			if len(tok) > 1 {
				c, err := strconv.Atoi(tok[:len(tok)-1])
				if err != nil {
					return nil, fmt.Errorf("conformance: bad step run %q", tok)
				}
				count = c
			}
			for i := 0; i < count; i++ {
				ops = append(ops, Op{Kind: OpStep})
			}
			continue
		}
		body, argText, hasArg := strings.Cut(tok, ":")
		if body == "" {
			return nil, fmt.Errorf("conformance: empty op body in %q", tok)
		}
		var arg int64
		if hasArg {
			a, err := strconv.ParseInt(argText, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("conformance: bad op arg %q", tok)
			}
			arg = a
		}
		if body == "s" {
			ops = append(ops, Op{Kind: OpStep, Arg: arg})
			continue
		}
		kind := OpKind(numOpKinds)
		for k, letter := range opLetters {
			if body[0] == letter {
				kind = OpKind(k)
				break
			}
		}
		if kind == numOpKinds {
			return nil, fmt.Errorf("conformance: unknown op %q", tok)
		}
		proc, err := strconv.Atoi(body[1:])
		if err != nil {
			return nil, fmt.Errorf("conformance: bad op process %q", tok)
		}
		ops = append(ops, Op{Kind: kind, Proc: proc, Arg: arg})
	}
	return ops, nil
}

// GenConfig parameterizes schedule generation.
type GenConfig struct {
	Target  string
	NProcs  int
	NPhases int
	Sched   SchedKind

	// Ops is the approximate schedule length (steps plus faults).
	Ops int
	// FaultRate is the per-op probability of injecting a fault instead of
	// stepping.
	FaultRate float64
	// Scrambles permits undetectable faults (lowering the checked
	// tolerance from masking to stabilizing).
	Scrambles bool
	// Crashes permits crash/restart faults: the engine's crash gate, or —
	// on the runtime target — bounded live crash windows (crash, outage,
	// restart-with-reset).
	Crashes bool
	// Spurious permits spurious-message injection (runtime target).
	Spurious bool
	// Byz permits Byzantine frame forgeries (runtime target).
	Byz bool
	// Kills permits whole-process kill+rejoin windows (cluster harness).
	Kills bool
	// Partitions permits timed process partitions (cluster harness).
	Partitions bool
	// Churns permits group stop/recreate churn (cluster harness).
	Churns bool
	// Loss and Corrupt set the runtime target's per-message fault rates.
	Loss    float64
	Corrupt float64
}

// Generate derives a schedule deterministically from the seed: the same
// (cfg, seed) pair always yields the identical schedule, and running it
// yields the identical verdict on the engine targets.
func Generate(cfg GenConfig, seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{
		Target:  cfg.Target,
		NProcs:  cfg.NProcs,
		NPhases: cfg.NPhases,
		Seed:    seed,
		Sched:   cfg.Sched,
		Loss:    cfg.Loss,
		Corrupt: cfg.Corrupt,
	}
	crashed := make([]bool, cfg.NProcs)
	nCrashed := 0
	runtimeTarget := IsRuntimeTarget(cfg.Target)
	for len(s.Ops) < cfg.Ops {
		if rng.Float64() >= cfg.FaultRate {
			op := Op{Kind: OpStep}
			if cfg.Sched == SchedPick {
				op.Arg = int64(rng.Intn(1 << 16))
			}
			s.Ops = append(s.Ops, op)
			continue
		}
		j := rng.Intn(cfg.NProcs)
		roll := rng.Intn(100)
		switch {
		case cfg.Kills && roll < 12:
			// A kill window: kill, a bounded outage (three pacing steps),
			// then the rejoin. Pairing immediately keeps every outage short
			// and deterministic, so generated schedules stay inside a
			// bounded wall-clock budget on a live cluster.
			s.Ops = append(s.Ops,
				Op{Kind: OpKill, Proc: j},
				Op{Kind: OpStep}, Op{Kind: OpStep}, Op{Kind: OpStep},
				Op{Kind: OpRestart, Proc: j})
		case cfg.Partitions && roll < 26:
			s.Ops = append(s.Ops, Op{Kind: OpPartition, Proc: j, Arg: int64(50 + rng.Intn(151))})
		case cfg.Churns && roll < 38:
			s.Ops = append(s.Ops, Op{Kind: OpChurn, Proc: j})
		case cfg.Crashes && !runtimeTarget && roll < 15:
			if crashed[j] {
				s.Ops = append(s.Ops, Op{Kind: OpRestart, Proc: j})
				crashed[j] = false
				nCrashed--
			} else if nCrashed < cfg.NProcs-1 {
				// Keep one process up so recovery always has a driver.
				s.Ops = append(s.Ops, Op{Kind: OpCrash, Proc: j})
				crashed[j] = true
				nCrashed++
			}
		case cfg.Crashes && runtimeTarget && roll < 15:
			// A live crash window: the member goes down, the ring runs
			// without it for a bounded outage, then the restart revives it
			// in the detectably-reset state. Self-contained pairing (like
			// the cluster kill window) keeps outages short and guarantees
			// the verification tail starts with everyone up.
			s.Ops = append(s.Ops,
				Op{Kind: OpCrash, Proc: j},
				Op{Kind: OpStep}, Op{Kind: OpStep}, Op{Kind: OpStep},
				Op{Kind: OpRestart, Proc: j})
		case cfg.Scrambles && roll < 30:
			s.Ops = append(s.Ops, Op{Kind: OpScramble, Proc: j, Arg: rng.Int63()})
		case cfg.Spurious && runtimeTarget && roll < 55:
			s.Ops = append(s.Ops, Op{Kind: OpSpurious, Proc: j, Arg: rng.Int63()})
		case cfg.Byz && runtimeTarget && roll < 75:
			s.Ops = append(s.Ops, Op{Kind: OpByz, Proc: j, Arg: rng.Int63()})
		default:
			s.Ops = append(s.Ops, Op{Kind: OpReset, Proc: j})
			if runtimeTarget {
				// Pace resets on the live ring: give the protocol real time
				// to re-integrate the reset process, so that bursts cannot
				// detectably corrupt every process at once (which the paper
				// reclassifies as a whole-system undetectable fault).
				s.Ops = append(s.Ops, Op{Kind: OpStep}, Op{Kind: OpStep})
			}
		}
	}
	// Restart everything the schedule left crashed: the verification tail
	// requires the program to be able to make progress.
	for j, down := range crashed {
		if down {
			s.Ops = append(s.Ops, Op{Kind: OpRestart, Proc: j})
		}
	}
	return s
}

// maxFuzzOps bounds byte-derived schedules so a single fuzz case stays
// fast; the soak CLI is the tool for long schedules.
const maxFuzzOps = 256

// maxRuntimeFuzzOps bounds runtime schedules harder: every step is real
// wall-clock pacing.
const maxRuntimeFuzzOps = 96

// FromBytes derives a schedule from fuzzer-provided bytes. The mapping is
// total (any byte string yields a valid schedule) and deterministic, so
// the fuzzer's corpus is a corpus of schedules. The target's structural
// parameters are also drawn from the data, widening the searched space to
// ring sizes and phase moduli.
func FromBytes(target string, seed int64, data []byte) Schedule {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	runtimeTarget := IsRuntimeTarget(target)
	s := Schedule{
		Target:  target,
		NProcs:  2 + int(next())%4, // 2..5
		NPhases: 2 + int(next())%3, // 2..4
		Seed:    seed,
	}
	maxOps := maxFuzzOps
	if runtimeTarget {
		maxOps = maxRuntimeFuzzOps
		s.NProcs = 3 + int(next())%3 // 3..5
		// Small per-message fault rates keep each case inside the fuzz
		// time budget while still exercising the loss/corruption paths.
		s.Loss = float64(next()%16) / 100
		s.Corrupt = float64(next()%16) / 100
	} else {
		s.Sched = SchedKind(next()) % numSchedKinds
	}
	sinceFault := 2
	for len(data) > 0 && len(s.Ops) < maxOps {
		b := next()
		if b < 0xB0 || sinceFault < 2 {
			s.Ops = append(s.Ops, Op{Kind: OpStep, Arg: int64(b)})
			sinceFault++
			continue
		}
		j := int(next()) % s.NProcs
		arg := int64(next())
		switch b % 5 {
		case 0, 1:
			s.Ops = append(s.Ops, Op{Kind: OpReset, Proc: j})
		case 2:
			s.Ops = append(s.Ops, Op{Kind: OpScramble, Proc: j, Arg: arg})
		case 3:
			if runtimeTarget {
				s.Ops = append(s.Ops, Op{Kind: OpSpurious, Proc: j, Arg: arg})
			} else {
				s.Ops = append(s.Ops, Op{Kind: OpCrash, Proc: j})
			}
		case 4:
			if runtimeTarget {
				// Split the arm on the argument's parity: a Byzantine
				// forgery, or a bounded live crash window (mirroring the
				// Generate pairing, so every byte-derived schedule ends
				// with all members up).
				if arg%2 == 0 {
					s.Ops = append(s.Ops, Op{Kind: OpByz, Proc: j, Arg: arg})
				} else {
					s.Ops = append(s.Ops,
						Op{Kind: OpCrash, Proc: j},
						Op{Kind: OpStep}, Op{Kind: OpStep}, Op{Kind: OpStep},
						Op{Kind: OpRestart, Proc: j})
				}
			} else {
				s.Ops = append(s.Ops, Op{Kind: OpRestart, Proc: j})
			}
		}
		sinceFault = 0
	}
	if !runtimeTarget {
		// Balance the crash gates (the runner restarts leftovers too, but a
		// balanced schedule shrinks better).
		down := map[int]bool{}
		for _, op := range s.Ops {
			switch op.Kind {
			case OpCrash:
				down[op.Proc] = true
			case OpRestart:
				delete(down, op.Proc)
			}
		}
		for j := 0; j < s.NProcs; j++ {
			if down[j] {
				s.Ops = append(s.Ops, Op{Kind: OpRestart, Proc: j})
			}
		}
	}
	return s
}
