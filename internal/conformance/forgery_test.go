package conformance

import (
	"testing"
)

// The recorded forged-frame counterexample, pinned as a deterministic
// regression. FuzzRuntime found that one well-formed, valid-checksum
// spurious frame could complete a barrier at the wrong phase; ddmin
// shrinking reduced the failing schedule to a single forgery between two
// step runs. Replayed against the defended runtime the schedule must now
// produce a clean verdict: the frame is rejected (the byz-only metric
// oracle inside the runner demands rejected == injected, exactly), every
// barrier completes at the correct phase, and the trace stabilizes.
func TestForgedFrameCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	const replay = "runtime:n=3:ph=3:seed=7:ops=10s,b1:9001,15s"
	s, err := Parse(replay)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasUndetectable() {
		t.Fatal("a forged frame must count as an undetectable fault (Table 1)")
	}
	v := Run(s)
	if !v.OK {
		t.Fatalf("counterexample no longer masked: %v\n  replay: %s", v, replay)
	}
	if !v.Stabilized {
		t.Errorf("verdict OK but not judged under the stabilizing tolerance: %v", v)
	}
}

// byzSchedule builds a byz-only schedule: one adversary, `forgeries`
// crafted frames paced by steps, warm-up and tail step runs around them.
// Byz-only arms the runner's exactness oracle — every accepted injection
// must reappear in barrier_rejected_frames_total, exactly once.
func byzSchedule(target string, n, nPhases int, seed int64, adversary, forgeries int) Schedule {
	s := Schedule{Target: target, NProcs: n, NPhases: nPhases, Seed: seed}
	steps := func(k int) {
		for i := 0; i < k; i++ {
			s.Ops = append(s.Ops, Op{Kind: OpStep})
		}
	}
	steps(10)
	for k := 0; k < forgeries; k++ {
		s.Ops = append(s.Ops, Op{Kind: OpByz, Proc: adversary, Arg: int64(7919*k + 13)})
		steps(3)
	}
	steps(10)
	return s
}

// One Byzantine adversary against every topology: the ring, the
// double tree and the hybrid must all stabilize, with the rejected-frames
// counters matching the accepted injections exactly (enforced by the
// metric cross-check inside the runner).
func TestByzSchedulesStabilize(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for _, target := range []string{TargetRuntime, TargetTree, TargetHybrid} {
		target := target
		t.Run(target, func(t *testing.T) {
			for _, adversary := range []int{0, 2} {
				s := byzSchedule(target, 5, 3, 23+int64(adversary), adversary, 8)
				v := Run(s)
				if !v.OK {
					t.Errorf("adversary %d: %v\n  replay: %s", adversary, v, s.String())
					continue
				}
				if !v.Stabilized {
					t.Errorf("adversary %d: verdict OK but not stabilized", adversary)
				}
			}
		})
	}
}

// Generated mixed schedules: Byzantine forgeries on top of live crash
// windows, resets and scrambles. The tolerance promise stays stabilizing.
func TestByzMixedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock paced")
	}
	for seed := int64(1); seed <= 2; seed++ {
		s := Generate(GenConfig{Target: TargetRuntime, NProcs: 4, NPhases: 3, Ops: 50,
			FaultRate: 0.2, Byz: true, Crashes: true, Scrambles: true}, seed)
		if s.CountKind(OpByz) == 0 {
			t.Fatalf("seed %d: generator produced no byz op", seed)
		}
		if v := Run(s); !v.OK {
			t.Errorf("seed %d: %v\n  replay: %s", seed, v, s.String())
		}
	}
}
