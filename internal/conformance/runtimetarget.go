package conformance

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Runtime-target pacing and deadlines. The runtime barrier is real
// goroutines exchanging real messages, so the harness shapes time rather
// than steps: an OpStep is a slice of wall-clock during which the ring
// runs freely, and the verification tail is a liveness deadline.
const (
	runtimeStepPacing   = 200 * time.Microsecond
	runtimeResend       = 50 * time.Microsecond
	runtimeTailDeadline = 20 * time.Second
	// runtimeTraceCap bounds the recorded event trace used for the
	// stabilization suffix check; the newest events win.
	runtimeTraceCap = 1 << 16
)

// runtimeCollector records the serialized event stream: a bounded trace
// (for suffix-stabilization analysis) plus an online checker (for masking
// runs). The barrier serializes sink calls, but the final read happens on
// the harness goroutine after Stop, so a mutex keeps the race detector —
// and the memory model — satisfied.
type runtimeCollector struct {
	mu      sync.Mutex
	checker *core.SpecChecker
	trace   []core.Event
}

func (c *runtimeCollector) sink(e core.Event) {
	c.mu.Lock()
	c.checker.Observe(e)
	if len(c.trace) == runtimeTraceCap {
		// Drop the oldest half in one block; the stabilization check only
		// needs a suffix, and block moves keep the sink O(1) amortized.
		c.trace = append(c.trace[:0], c.trace[runtimeTraceCap/2:]...)
	}
	c.trace = append(c.trace, e)
	c.mu.Unlock()
}

// runRuntime executes a schedule against the live goroutine barrier.
//
// Verdict semantics mirror runEngine: masking schedules (no scrambles)
// must keep the specification clean for the whole run and deliver
// tailBarriers fresh passes to every participant after faults stop;
// stabilizing schedules must deliver the passes and exhibit a trace
// suffix satisfying the specification (core.SuffixSatisfying — the
// harness cannot peek at goroutine-private state to detect a start state,
// so stabilization is judged from the observable trace alone).
func runRuntime(s Schedule) Verdict {
	v := Verdict{FailOpIndex: -1}
	masking := !s.HasUndetectable()
	col := &runtimeCollector{checker: core.NewSpecChecker(s.NProcs, s.NPhases)}
	// Metrics ride along on every conformance run: after the replay, the
	// exported fault counters must equal what the schedule injected (the
	// metric-vs-schedule oracle), and scraping during the run keeps the
	// exposition path under the race detector's eyes.
	reg := obsv.NewRegistry()
	// The tcp target runs the identical protocol over loopback sockets:
	// the verdict must not depend on which transport carries the ring.
	var tr runtime.Transport
	if s.Target == TargetTCP {
		tcp, err := transport.NewLoopbackRing(s.NProcs,
			func(c *transport.TCPConfig) { c.Registry = reg })
		if err != nil {
			v.Reason = "loopback transport: " + err.Error()
			return v
		}
		defer tcp.Close()
		tr = tcp
	}
	// The mux target runs the scheduled barrier as group 0 of a
	// multiplexed loopback deployment, with background tenant groups —
	// a second ring and a tree — passing their own barriers over the very
	// same connections throughout the schedule. The verdict must not
	// depend on the cross-traffic: group tags isolate the tenants.
	if s.Target == TargetMux {
		specs := []transport.GroupSpec{
			{ID: 0, Name: "sched"},
			{ID: 1, Name: "bg_ring"},
			{ID: 2, Name: "bg_tree", Topology: transport.GroupTree},
		}
		set, err := transport.NewLoopbackMuxes(s.NProcs, specs, func(c *transport.MuxConfig) {
			if c.Self == 0 {
				// One process exports the shared transport counters; the
				// set's muxes would otherwise collide on the series names.
				c.Registry = reg
			}
		})
		if err != nil {
			v.Reason = "loopback mux: " + err.Error()
			return v
		}
		defer set.Close()
		tr = set.Ring(0)
		stopBG, err := startBackgroundGroups(set, specs[1:], s, reg)
		if err != nil {
			v.Reason = "background groups: " + err.Error()
			return v
		}
		defer stopBG()
	}
	// The tree target swaps the ring refinement for the double-tree one;
	// everything else — pacing, fault rates, verdict — is unchanged, which
	// is the conformance statement: the topology must not be observable.
	// The hybrid target additionally fuses members pairwise onto per-host
	// schedulers (all hosts in-process, like the tree target's links).
	topology := runtime.TopologyRing
	var hosts [][]int
	switch s.Target {
	case TargetTree:
		topology = runtime.TopologyTree
	case TargetHybrid:
		topology = runtime.TopologyHybrid
		hosts = pairHosts(s.NProcs)
	}
	b, err := runtime.New(runtime.Config{
		Participants: s.NProcs,
		NPhases:      s.NPhases,
		Topology:     topology,
		Hosts:        hosts,
		Transport:    tr,
		Resend:       runtimeResend,
		LossRate:     s.Loss,
		CorruptRate:  s.Corrupt,
		Seed:         s.Seed,
		EventSink:    col.sink,
		Metrics:      reg,
	})
	if err != nil {
		v.Reason = "invalid schedule: " + err.Error()
		return v
	}
	defer b.Stop()

	// Participants loop Await, redoing reset phases, until cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	passes := make([]atomic.Int64, s.NProcs)
	var wg sync.WaitGroup
	for id := 0; id < s.NProcs; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := b.Await(ctx, id)
				switch {
				case err == nil:
					passes[id].Add(1)
				case errors.Is(err, runtime.ErrReset):
					// Phase work lost: redo.
				default:
					return
				}
			}
		}()
	}

	// Scraper: renders the registry while the protocol runs, so every
	// conformance and fuzz execution doubles as a concurrency test of the
	// recording/exposition pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sb strings.Builder
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
			sb.Reset()
			reg.WriteText(&sb)
		}
	}()

	clampProc := func(j int) int {
		j %= s.NProcs
		if j < 0 {
			j += s.NProcs
		}
		return j
	}
	// Tally what the schedule actually injects, post-clamp, for the
	// metric-vs-schedule cross-check after the run.
	var inj injected
	down := make([]bool, s.NProcs)
	for _, op := range s.Ops {
		switch op.Kind {
		case OpStep:
			time.Sleep(runtimeStepPacing)
		case OpReset:
			b.Reset(clampProc(op.Proc))
			inj.resets++
		case OpScramble:
			b.Scramble(clampProc(op.Proc), op.Arg)
			inj.scrambles++
		case OpSpurious:
			b.InjectSpurious(clampProc(op.Proc), op.Arg)
			inj.spurious++
		case OpCrash:
			j := clampProc(op.Proc)
			b.Crash(j)
			inj.crashes++
			down[j] = true
		case OpRestart:
			j := clampProc(op.Proc)
			b.Restart(j)
			inj.restarts++
			down[j] = false
		case OpByz:
			b.Byz(clampProc(op.Proc), op.Arg)
			inj.byz++
		}
	}
	// Restart anything the schedule left crashed: the verification tail
	// requires every member to make progress (the engine runner does the
	// same for unbalanced crash gates).
	for j, d := range down {
		if d {
			b.Restart(j)
			inj.restarts++
		}
	}

	// Verification tail: every participant must gain tailBarriers fresh
	// passes now that faults have stopped. For stabilizing schedules the
	// trace must additionally end in a spec-satisfying suffix — and because
	// fault injection is asynchronous, a fault queued by the schedule's last
	// ops may corrupt barriers inside the tail window; stabilization is an
	// "eventually" property, so the suffix is re-checked while the ring
	// keeps running until it holds or the deadline expires.
	base := make([]int64, s.NProcs)
	for id := range base {
		base[id] = passes[id].Load()
	}
	deadline := time.Now().Add(runtimeTailDeadline)
	stabilized := false
	for {
		done := true
		for id := range base {
			if passes[id].Load() < base[id]+tailBarriers {
				done = false
				break
			}
		}
		if done {
			if masking {
				break
			}
			col.mu.Lock()
			_, stabilized = core.SuffixSatisfying(col.trace, s.NProcs, s.NPhases, tailBarriers)
			col.mu.Unlock()
			if stabilized {
				break
			}
		}
		if time.Now().After(deadline) {
			if done {
				v.Reason = "no stabilizing trace suffix"
			} else {
				v.Reason = "no progress after faults stopped"
			}
			if masking {
				v.Violation = func() error { col.mu.Lock(); defer col.mu.Unlock(); return col.checker.Violation() }()
			}
			return v
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	b.Stop()

	// Metric-vs-schedule cross-check: with the protocol goroutines
	// quiescent, the exported accounting must agree exactly with the
	// schedule that was replayed. A mismatch is a verdict failure in its
	// own right — the observability layer lying about faults is as much a
	// conformance bug as a spec violation.
	var observed int64
	for id := range base {
		observed += passes[id].Load()
	}
	if reason := crossCheckMetrics(b.Stats(), reg, s, inj, observed); reason != "" {
		v.Reason = "metrics mismatch: " + reason
		return v
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	v.Barriers = col.checker.SuccessfulBarriers()
	if masking {
		if err := col.checker.Violation(); err != nil {
			v.Reason = "spec violation under detectable faults"
			v.Violation = err
			return v
		}
		v.OK = true
		return v
	}
	// The suffix held while the ring was live; with no further faults the
	// events appended since can only extend it, but re-verify on the final
	// trace for the verdict's Barriers-independent integrity.
	if _, ok := core.SuffixSatisfying(col.trace, s.NProcs, s.NPhases, tailBarriers); !ok {
		v.Reason = "no stabilizing trace suffix"
		return v
	}
	v.Stabilized = true
	v.OK = true
	return v
}

// pairHosts groups n members two per host ({0,1},{2,3},... with a
// trailing singleton when n is odd) — the hybrid target's roster shape.
func pairHosts(n int) [][]int {
	var hosts [][]int
	for i := 0; i < n; i += 2 {
		roster := []int{i}
		if i+1 < n {
			roster = append(roster, i+1)
		}
		hosts = append(hosts, roster)
	}
	return hosts
}

// startBackgroundGroups brings up one barrier per background tenant group
// over the shared mux connections and keeps every member looping Await
// with mild self-injected corruption — cross-traffic for the scheduled
// group's run. Their metric series carry {group="..."} labels, so the
// scheduled barrier's unlabelled series (which the cross-check reads)
// stay unambiguous. The returned stop function tears the tenants down.
func startBackgroundGroups(set *transport.MuxSet, specs []transport.GroupSpec, s Schedule, reg *obsv.Registry) (func(), error) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var stops []func()
	stopAll := func() {
		cancel()
		for _, stop := range stops {
			stop()
		}
		wg.Wait()
	}
	for _, spec := range specs {
		topology := runtime.TopologyRing
		var tr runtime.Transport = set.Ring(spec.ID)
		if spec.Topology == transport.GroupTree {
			topology = runtime.TopologyTree
			tr = set.Tree(spec.ID)
		}
		b, err := runtime.New(runtime.Config{
			Participants: s.NProcs,
			NPhases:      s.NPhases,
			Topology:     topology,
			Transport:    tr,
			Resend:       runtimeResend,
			CorruptRate:  0.01,
			Seed:         s.Seed + int64(spec.ID)<<20,
			Metrics:      reg,
			MetricLabel:  `group="` + spec.Name + `"`,
		})
		if err != nil {
			stopAll()
			return nil, err
		}
		stops = append(stops, b.Stop)
		for id := 0; id < s.NProcs; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := b.Await(ctx, id); err != nil && !errors.Is(err, runtime.ErrReset) {
						return
					}
				}
			}()
		}
	}
	return stopAll, nil
}

// injected tallies what the schedule actually delivered to the barrier's
// injection API, post-clamp, per fault class.
type injected struct {
	resets, scrambles, spurious, crashes, restarts, byz int64
}

// crossCheckMetrics verifies the exported accounting against the replayed
// schedule. Returns "" on agreement, else a description of the first
// mismatch.
//
// The injection counters are exact by construction — every injection call
// tallies synchronously as accepted or dropped — so equality, not
// inequality, is demanded for the total. Per class only an upper bound
// holds from the schedule side (a full control buffer drops the call, and
// a Byzantine injection whose victim was mid-recovery is reclassified as
// dropped). In a byz-ONLY schedule the accepted Byzantine injections must
// reappear in the rejected-frames counters exactly: genuine frames are
// never rejected in steady state, every delivered forgery is rejected
// once, and the crafts never confirm a pending sighting. The recovery
// histogram is bounded by the faults that can have armed it, and the
// exported pass counter must cover every pass a participant observed (it
// may exceed it: a pass delivered in the instant the run was cancelled
// is counted but uncollected).
func crossCheckMetrics(st runtime.Stats, reg *obsv.Registry, s Schedule, inj injected, observedPasses int64) string {
	accepted := st.ResetsInjected + st.ScramblesInjected + st.CrashesInjected + st.RestartsInjected + st.ByzInjected
	calls := inj.resets + inj.scrambles + inj.crashes + inj.restarts + inj.byz
	if got := accepted + st.DroppedInjections; got != calls {
		return fmt.Sprintf("accepted(%d)+dropped(%d) injections = %d, schedule injected %d",
			accepted, st.DroppedInjections, got, calls)
	}
	if st.ResetsInjected > inj.resets {
		return fmt.Sprintf("ResetsInjected = %d, schedule held only %d resets", st.ResetsInjected, inj.resets)
	}
	if st.ScramblesInjected > inj.scrambles {
		return fmt.Sprintf("ScramblesInjected = %d, schedule held only %d scrambles", st.ScramblesInjected, inj.scrambles)
	}
	if st.CrashesInjected > inj.crashes {
		return fmt.Sprintf("CrashesInjected = %d, schedule held only %d crashes", st.CrashesInjected, inj.crashes)
	}
	if st.RestartsInjected > inj.restarts {
		return fmt.Sprintf("RestartsInjected = %d, schedule held only %d restarts", st.RestartsInjected, inj.restarts)
	}
	if st.ByzInjected > inj.byz {
		return fmt.Sprintf("ByzInjected = %d, schedule held only %d forgeries", st.ByzInjected, inj.byz)
	}
	if st.Spurious != inj.spurious {
		return fmt.Sprintf("Spurious = %d, schedule injected %d", st.Spurious, inj.spurious)
	}
	rejected := st.RejectedSeq + st.RejectedPhase + st.RejectedTop + st.RejectedSender
	byzOnly := inj.byz > 0 && inj.resets+inj.scrambles+inj.spurious+inj.crashes+inj.restarts == 0 &&
		s.Loss == 0 && s.Corrupt == 0
	if byzOnly && rejected != st.ByzInjected {
		return fmt.Sprintf("byz-only schedule: %d frames rejected for %d accepted forgeries (seq=%d phase=%d top=%d sender=%d)",
			rejected, st.ByzInjected, st.RejectedSeq, st.RejectedPhase, st.RejectedTop, st.RejectedSender)
	}
	if st.Passes < observedPasses {
		return fmt.Sprintf("Passes = %d < %d passes observed by participants", st.Passes, observedPasses)
	}
	if st.Drops > st.Sends+st.Spurious {
		return fmt.Sprintf("Drops = %d exceeds Sends+Spurious = %d", st.Drops, st.Sends+st.Spurious)
	}
	// The exported series must agree with the Stats snapshot, and the
	// recovery histogram can only have been armed by accepted state faults
	// (a restart revives into the detectably-reset state, so it arms the
	// histogram like a reset).
	if got := scrapeValue(reg, "barrier_passes_total"); got != st.Passes {
		return fmt.Sprintf("exported barrier_passes_total = %d, Stats.Passes = %d", got, st.Passes)
	}
	var scrapedRej int64
	for _, rc := range []struct {
		reason string
		want   int64
	}{
		{"seqwindow", st.RejectedSeq},
		{"phasewindow", st.RejectedPhase},
		{"topwindow", st.RejectedTop},
		{"sender", st.RejectedSender},
	} {
		got := scrapeValue(reg, `barrier_rejected_frames_total{reason="`+rc.reason+`"}`)
		if got != rc.want {
			return fmt.Sprintf("exported barrier_rejected_frames_total{reason=%q} = %d, Stats = %d", rc.reason, got, rc.want)
		}
		scrapedRej += got
	}
	if scrapedRej != rejected {
		return fmt.Sprintf("exported rejected-frame series sum to %d, Stats sum to %d", scrapedRej, rejected)
	}
	if got := scrapeValue(reg, "barrier_recovery_seconds_count"); got > st.ResetsInjected+st.ScramblesInjected+st.RestartsInjected {
		return fmt.Sprintf("recovery histogram holds %d observations for %d accepted state faults",
			got, st.ResetsInjected+st.ScramblesInjected+st.RestartsInjected)
	}
	return ""
}

// scrapeValue renders the registry and returns the integer value of the
// named sample line (-1 if absent — which no cross-checked series is).
func scrapeValue(reg *obsv.Registry, name string) int64 {
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		return -1
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}
