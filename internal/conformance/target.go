package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cb"
	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/guarded"
	"repro/internal/mb"
	"repro/internal/rb"
	"repro/internal/rbtree"
)

// TargetRuntime names the goroutine runtime-barrier target, which runs
// live goroutines rather than the guarded engine (see runtimetarget.go).
const TargetRuntime = "runtime"

// TargetTCP names the runtime barrier over the loopback TCP transport:
// the same live-goroutine protocol engine as TargetRuntime, but every ring
// link is a real socket (internal/transport), so a schedule additionally
// exercises framing, reconnection and the socket-failure→loss mapping. A
// schedule is portable between the two targets and must produce the same
// verdict on both.
const TargetTCP = "tcp"

// TargetTree names the runtime barrier in its tree topology: the same live
// protocol engine, but running the double-tree refinement (broadcast wave
// down, acknowledgment convergecast up) over in-process tree links instead
// of the ring. A schedule is portable between the ring and tree topologies
// and must produce the same verdict on both.
const TargetTree = "tree"

// TargetMux names the runtime barrier over the multiplexed loopback TCP
// transport: the scheduled barrier is one tenant group among several
// sharing one connection per process pair, so every case additionally
// exercises group tagging, per-group demultiplexing, and tenant isolation
// — the background groups run their own barriers on the same sockets
// while the schedule injects faults into the scheduled group only.
const TargetMux = "mux"

// TargetHybrid names the runtime barrier in its hybrid topology: members
// are grouped two per host, each host's members fuse onto one local
// scheduler, and only host roots exchange messages in the cross-host
// tree. A schedule is portable between the ring and the hybrid shape and
// must produce the same verdict on both — the fusion must not be
// observable.
const TargetHybrid = "hybrid"

// IsRuntimeTarget reports whether the named target runs the live goroutine
// barrier (wall-clock pacing, message-rate faults, spurious injection)
// rather than a guarded-engine refinement.
func IsRuntimeTarget(name string) bool {
	switch name {
	case TargetRuntime, TargetTCP, TargetTree, TargetMux, TargetHybrid:
		return true
	}
	return false
}

// Target is the conformance harness's view of a guarded-engine barrier
// program: every refinement exposes this identical surface, which is
// itself a small conformance statement — a program that cannot be wired
// in here cannot be checked against the others.
type Target interface {
	N() int
	NumPhases() int
	// Step executes one scheduler step; pick selects the action under
	// SchedPick. It reports whether any action was enabled.
	Step(kind SchedKind, rng *rand.Rand, pick int) bool
	InjectDetectable(j int)
	InjectUndetectable(j int)
	// Corrupted reports whether process j is in a detectably corrupted
	// state, for the not-all-corrupted injection discipline (footnote 2 of
	// the paper: a detectable fault that corrupts the last clean process
	// is reclassified as a whole-system undetectable fault).
	Corrupted(j int) bool
	// InStartState reports whether the program reached a legitimate start
	// state, the stabilization criterion after undetectable faults.
	InStartState() bool
	Phase(j int) int
	SetSink(core.EventSink)
	// SetGate installs the crash gate (the paper's auxiliary variable up).
	SetGate(up func(j int) bool)
	fmt.Stringer
}

// engineProgram is the method set shared by the five guarded-engine
// refinements (cb, rb, rbtree, dtree, mb).
type engineProgram interface {
	Guarded() *guarded.Program
	N() int
	NumPhases() int
	Phase(j int) int
	InjectDetectable(j int)
	InjectUndetectable(j int)
	Corrupted(j int) bool
	InStartState() bool
	SetSink(core.EventSink)
	fmt.Stringer
}

// engineTarget adapts an engineProgram to the Target interface.
type engineTarget struct {
	engineProgram
	g *guarded.Program
}

func newEngineTarget(p engineProgram) Target {
	return &engineTarget{engineProgram: p, g: p.Guarded()}
}

func (t *engineTarget) Step(kind SchedKind, rng *rand.Rand, pick int) bool {
	switch kind {
	case SchedRoundRobin:
		_, ok := t.g.StepRoundRobin()
		return ok
	case SchedMaxParallel:
		return t.g.StepMaxParallel(rng) > 0
	case SchedPick:
		_, ok := t.g.StepEnabled(pick)
		return ok
	default:
		_, ok := t.g.StepRandom(rng)
		return ok
	}
}

func (t *engineTarget) SetGate(up func(j int) bool) {
	if up == nil {
		t.g.SetProcessGate(nil)
		return
	}
	t.g.SetProcessGate(up)
}

// Builder constructs a target instance. All randomness the program needs
// (its internal nondeterministic choices and its fault-value draws) must
// come from rng, so that a schedule replays deterministically.
type Builder func(nProcs, nPhases int, rng *rand.Rand) (Target, error)

var builders = map[string]Builder{}

// Register adds a named target. The built-in refinements register
// themselves in init; tests register deliberately broken targets to prove
// the harness catches and shrinks real violations.
func Register(name string, b Builder) { builders[name] = b }

// Targets returns the registered guarded-engine target names, sorted,
// with the runtime targets appended last.
func Targets() []string {
	names := make([]string, 0, len(builders)+5)
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return append(names, TargetRuntime, TargetTCP, TargetTree, TargetMux, TargetHybrid)
}

// NewTarget builds the named target with its randomness rooted at rng.
func NewTarget(name string, nProcs, nPhases int, rng *rand.Rand) (Target, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("conformance: unknown target %q (have %v)", name, Targets())
	}
	return b(nProcs, nPhases, rng)
}

// binaryTreeParents returns the heap-shaped parent vector used for the
// tree targets: parent[0] = -1, parent[j] = (j-1)/2.
func binaryTreeParents(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for j := 1; j < n; j++ {
		parent[j] = (j - 1) / 2
	}
	return parent
}

func init() {
	Register("cb", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := cb.New(n, nPhases, rng, nil)
		if err != nil {
			return nil, err
		}
		return newEngineTarget(p), nil
	})
	Register("rb", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := rb.New(n, nPhases, n+1, rng, nil)
		if err != nil {
			return nil, err
		}
		return newEngineTarget(p), nil
	})
	Register("tb", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := rbtree.New(binaryTreeParents(n), nPhases, n+1, rng, nil)
		if err != nil {
			return nil, err
		}
		return newEngineTarget(p), nil
	})
	Register("dt", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := dtree.New(binaryTreeParents(n), nPhases, n+1, rng, nil)
		if err != nil {
			return nil, err
		}
		return newEngineTarget(p), nil
	})
	Register("mb", func(n, nPhases int, rng *rand.Rand) (Target, error) {
		p, err := mb.New(n, nPhases, 2*n+2, rng, nil)
		if err != nil {
			return nil, err
		}
		return newEngineTarget(p), nil
	})
}
