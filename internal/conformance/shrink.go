package conformance

// Shrink reduces a failing schedule to a (locally) minimal counterexample:
// no single remaining op can be removed without the failure disappearing.
// fails must report whether a candidate schedule still fails; for
// guarded-engine targets Run is deterministic, so the obvious
//
//	func(c Schedule) bool { return !Run(c).OK }
//
// predicate makes shrinking itself fully deterministic.
//
// The strategy is ddmin-style greedy chunk deletion: try removing blocks
// of ops, halving the block size down to 1, restarting from the largest
// size whenever a removal sticks. shrinkBudget caps the total predicate
// evaluations so adversarial inputs cannot stall a fuzz run.
func Shrink(s Schedule, fails func(Schedule) bool) Schedule {
	const shrinkBudget = 2000
	evals := 0
	try := func(c Schedule) bool {
		if evals >= shrinkBudget {
			return false
		}
		evals++
		return fails(c)
	}

	best := s
	improved := true
	for improved && evals < shrinkBudget {
		improved = false
		for chunk := len(best.Ops) / 2; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= len(best.Ops); {
				c := best
				c.Ops = make([]Op, 0, len(best.Ops)-chunk)
				c.Ops = append(c.Ops, best.Ops[:start]...)
				c.Ops = append(c.Ops, best.Ops[start+chunk:]...)
				if try(c) {
					best = c
					improved = true
					// Same start now addresses the next ops; don't advance.
				} else {
					start++
				}
			}
		}
	}
	return best
}
