package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faults"
)

// Budgets for the verification phases. The engines execute hundreds of
// thousands of micro-steps per millisecond, so these are generous without
// being slow; the runtime target uses wall-clock deadlines instead.
const (
	// tailBarriers successful barriers must be observed after the fault
	// schedule ends (the Progress half of the specification).
	tailBarriers = 3
	// tailBudget bounds the scheduler steps spent hunting for them.
	tailBudget = 400_000
	// stabilizeBudget bounds the steps allowed to reach a start state
	// after undetectable faults.
	stabilizeBudget = 400_000
)

// Verdict is the outcome of running one schedule.
type Verdict struct {
	OK bool
	// Reason is empty when OK; otherwise a stable, human-readable failure
	// class ("spec violation during fault schedule", "no progress after
	// faults stopped", …).
	Reason string
	// Violation carries the core.SpecChecker violation, if any.
	Violation error
	// FailOpIndex is the index of the schedule op at which the failure was
	// detected, or -1 (failure in the verification tail, or none).
	FailOpIndex int
	// Barriers counts the successful barriers observed by the checker.
	Barriers int
	// Steps counts scheduler steps executed (engine targets).
	Steps int
	// SkippedFaults counts detectable injections suppressed by the
	// not-all-corrupted discipline.
	SkippedFaults int
	// Stabilized reports whether a start state was reached after
	// undetectable faults (stabilizing runs only).
	Stabilized bool
}

func (v Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("ok (barriers=%d steps=%d skipped=%d)", v.Barriers, v.Steps, v.SkippedFaults)
	}
	s := fmt.Sprintf("FAIL: %s", v.Reason)
	if v.Violation != nil {
		s += fmt.Sprintf(" (%v)", v.Violation)
	}
	if v.FailOpIndex >= 0 {
		s += fmt.Sprintf(" at op %d", v.FailOpIndex)
	}
	return s
}

// Run executes a schedule and judges it against the barrier specification
// under the tolerance the paper promises for its fault mix:
//
//   - detectable faults only (resets, crashes, message loss and detected
//     corruption): masking — the specification must hold at every prefix
//     of the computation, and progress must resume after the schedule
//     ends;
//   - any undetectable fault (scrambled state, or a spurious well-formed
//     message, which the receiver cannot distinguish from a genuine one):
//     stabilizing — after the schedule ends the program must reach a
//     legitimate state from which the specification holds with fresh
//     progress.
//
// For guarded-engine targets Run is a pure function of the schedule; call
// it twice and the verdicts are identical.
func Run(s Schedule) Verdict {
	if IsRuntimeTarget(s.Target) {
		return runRuntime(s)
	}
	return runEngine(s)
}

// runEngine executes a schedule on a guarded-engine target.
func runEngine(s Schedule) Verdict {
	v := Verdict{FailOpIndex: -1}
	progRng := rand.New(rand.NewSource(s.Seed))
	tgt, err := NewTarget(s.Target, s.NProcs, s.NPhases, progRng)
	if err != nil {
		v.Reason = fmt.Sprintf("invalid schedule: %v", err)
		return v
	}
	// The scheduler's own choices are resolved by an independent stream so
	// that shrinking fault ops does not perturb the program's draws.
	schedRng := rand.New(rand.NewSource(s.Seed ^ int64(0x9e3779b97f4a7c15&^(1<<63))))

	masking := !s.HasUndetectable()
	checker := core.NewSpecChecker(s.NProcs, s.NPhases)
	if masking {
		tgt.SetSink(checker.Observe)
	}
	crash := faults.NewCrasher(s.NProcs)
	tgt.SetGate(crash.Gate)

	clampProc := func(j int) int {
		j %= s.NProcs
		if j < 0 {
			j += s.NProcs
		}
		return j
	}
	// safeToCorrupt implements footnote 2's discipline: a detectable fault
	// may not corrupt the last detectably clean process, because that is a
	// whole-system fault and only stabilizing tolerance applies to it.
	safeToCorrupt := func(j int) bool {
		for k := 0; k < s.NProcs; k++ {
			if k != j && !tgt.Corrupted(k) {
				return true
			}
		}
		return false
	}
	reset := func(j int) {
		if masking && !safeToCorrupt(j) {
			v.SkippedFaults++
			return
		}
		tgt.InjectDetectable(j)
	}

	fail := func(i int, reason string) Verdict {
		v.OK = false
		v.Reason = reason
		v.FailOpIndex = i
		v.Violation = checker.Violation()
		v.Barriers = checker.SuccessfulBarriers()
		return v
	}

	for i, op := range s.Ops {
		switch op.Kind {
		case OpStep:
			if tgt.Step(s.Sched, schedRng, int(op.Arg)) {
				v.Steps++
			}
		case OpReset:
			reset(clampProc(op.Proc))
		case OpScramble:
			tgt.InjectUndetectable(clampProc(op.Proc))
		case OpCrash:
			crash.Crash(clampProc(op.Proc))
		case OpRestart:
			j := clampProc(op.Proc)
			if !crash.Up(j) {
				crash.Restart(j)
				// Section 7: a restarted process resumes with a reset, not
				// its pre-crash, state — where the discipline allows the
				// corruption. Otherwise the crash degrades to a pause
				// (state preserved), which is also masking-safe.
				reset(j)
			}
		case OpSpurious:
			// Engines have no message channels; spurious reception is a
			// runtime-target fault.
		}
		if masking && checker.Violation() != nil {
			return fail(i, "spec violation during fault schedule")
		}
	}

	// End of schedule: revive whatever is still crashed so progress is
	// possible, then verify the tolerance's aftermath.
	for j := 0; j < s.NProcs; j++ {
		if !crash.Up(j) {
			crash.Restart(j)
			reset(j)
		}
	}

	// The verification phases always run the probabilistically fair random
	// scheduler: safety must hold under any interleaving (and is checked
	// under the schedule's own, possibly adversarial, scheduler above),
	// but the paper's progress and stabilization guarantees are promised
	// only for fair computations.
	if masking {
		base := checker.SuccessfulBarriers()
		for i := 0; i < tailBudget && checker.SuccessfulBarriers() < base+tailBarriers; i++ {
			if !tgt.Step(SchedRandom, schedRng, 0) {
				return fail(-1, "deadlock in verification tail")
			}
			v.Steps++
			if checker.Violation() != nil {
				return fail(-1, "spec violation in verification tail")
			}
		}
		if checker.SuccessfulBarriers() < base+tailBarriers {
			return fail(-1, "no progress after faults stopped")
		}
		v.OK = true
		v.Barriers = checker.SuccessfulBarriers()
		return v
	}

	// Stabilizing: run detached until a legitimate start state, then attach
	// a fresh checker aligned to the stabilized phase and demand fresh
	// correct barriers.
	tgt.SetSink(nil)
	stabilized := false
	for i := 0; i < stabilizeBudget; i++ {
		if tgt.InStartState() {
			stabilized = true
			break
		}
		if !tgt.Step(SchedRandom, schedRng, 0) {
			return fail(-1, "deadlock before stabilization")
		}
		v.Steps++
	}
	if !stabilized {
		return fail(-1, "did not stabilize to a start state")
	}
	v.Stabilized = true
	checker = core.NewSpecCheckerAt(s.NProcs, s.NPhases, tgt.Phase(0))
	tgt.SetSink(checker.Observe)
	for i := 0; i < tailBudget && checker.SuccessfulBarriers() < tailBarriers; i++ {
		if !tgt.Step(SchedRandom, schedRng, 0) {
			return fail(-1, "deadlock after stabilization")
		}
		v.Steps++
		if checker.Violation() != nil {
			return fail(-1, "spec violation after stabilization")
		}
	}
	if checker.SuccessfulBarriers() < tailBarriers {
		return fail(-1, "no progress after stabilization")
	}
	v.OK = true
	v.Barriers = checker.SuccessfulBarriers()
	return v
}
