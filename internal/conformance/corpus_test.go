package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"regenerate testdata/corpus-v1.txt from the schedules in corpusEntries")

// corpusPath is the versioned seed corpus: one replayable schedule per
// line with its recorded verdict. The version number is part of the
// schedule-language contract — any change that re-letters ops, renumbers
// kinds, or perturbs Generate's draws for existing seeds will fail the
// replay test against this file, which is exactly the point: historical
// seeds must keep reproducing their historical runs. Regenerate (bumping
// the version) only when the language itself deliberately changes:
//
//	go test ./internal/conformance -run TestSeedCorpusReplay -update-corpus
const corpusPath = "testdata/corpus-v1.txt"

type corpusEntry struct {
	sched Schedule
	// parseOnly entries pin the text form without executing (the "bench"
	// pseudo-target is run by the barrierbench harness, not by Run).
	parseOnly bool
}

// corpusEntries defines the corpus deterministically, so -update-corpus
// writes the same file on every machine.
func corpusEntries() []corpusEntry {
	var entries []corpusEntry
	// Every guarded engine, masking and stabilizing mixes. These verdicts
	// are pure functions of the schedule: barrier counts are recorded and
	// must replay exactly.
	for _, tgt := range engineTargets {
		for seed := int64(1); seed <= 3; seed++ {
			entries = append(entries, corpusEntry{sched: Generate(GenConfig{
				Target: tgt, NProcs: 4, NPhases: 3, Sched: SchedRandom,
				Ops: 120, FaultRate: 0.12, Crashes: true}, seed)})
			entries = append(entries, corpusEntry{sched: Generate(GenConfig{
				Target: tgt, NProcs: 4, NPhases: 3, Sched: SchedRoundRobin,
				Ops: 120, FaultRate: 0.15, Scrambles: true, Crashes: true}, seed)})
		}
	}
	// Hand-written regression shapes: the minimal historical
	// counterexample patterns (adjacent resets, reset storms across the
	// ring) that shrinking used to produce.
	for _, text := range []string{
		"tb:n=4:ph=3:seed=2:sched=random:ops=12s,r2,r0,20s",
		"mb:n=3:ph=4:seed=9:sched=roundrobin:ops=8s,r0,r1,r2,30s",
		"dt:n=7:ph=3:seed=5:sched=maxparallel:ops=10s,u3,25s",
	} {
		s, err := Parse(text)
		if err != nil {
			panic(fmt.Sprintf("corpus regression entry %q: %v", text, err))
		}
		entries = append(entries, corpusEntry{sched: s})
	}
	// The cluster-harness dialect: kill windows, timed partitions and
	// group churn (barrierbench's chaos ops). Parse-pinned only — Run has
	// no "bench" target — so the op letters k/P/g stay stable.
	for _, text := range []string{
		"bench:n=8:ph=4:seed=1:sched=random:ops=5s,k3,3s,R3,4s,P1:150,2s,g6,s,r0:11,3s",
		"bench:n=4:ph=4:seed=7:sched=random:ops=k0,3s,R0,P2:75,g1,g1,r3:2",
	} {
		s, err := Parse(text)
		if err != nil {
			panic(fmt.Sprintf("corpus bench entry %q: %v", text, err))
		}
		entries = append(entries, corpusEntry{sched: s, parseOnly: true})
	}
	return entries
}

// verdictKey is the stable portion of a verdict recorded in the corpus.
func verdictKey(v Verdict) string {
	if !v.OK {
		return "FAIL " + v.Reason
	}
	return fmt.Sprintf("ok barriers=%d skipped=%d", v.Barriers, v.SkippedFaults)
}

// TestSeedCorpusReplay replays every corpus schedule and compares its
// verdict with the recorded one: the regression gate for the schedule
// language (parse → text → parse must be lossless) and for engine
// determinism (same schedule, same verdict, forever).
func TestSeedCorpusReplay(t *testing.T) {
	if *updateCorpus {
		var sb strings.Builder
		sb.WriteString("# Versioned conformance seed corpus (v1).\n")
		sb.WriteString("# One entry per line: <verdict> <TAB> <schedule>.\n")
		sb.WriteString("# parse-only entries pin the text form of dialects Run does not execute.\n")
		sb.WriteString("# Regenerate: go test ./internal/conformance -run TestSeedCorpusReplay -update-corpus\n")
		for _, e := range corpusEntries() {
			key := "parse-only"
			if !e.parseOnly {
				key = verdictKey(Run(e.sched))
			}
			fmt.Fprintf(&sb, "%s\t%s\n", key, e.sched.String())
		}
		if err := os.MkdirAll(filepath.Dir(corpusPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", corpusPath, len(corpusEntries()))
		return
	}

	data, err := os.ReadFile(corpusPath)
	if err != nil {
		t.Fatalf("seed corpus missing (run with -update-corpus to create it): %v", err)
	}
	entries := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want, text, found := strings.Cut(line, "\t")
		if !found {
			t.Fatalf("%s:%d: malformed corpus line %q", corpusPath, lineNo+1, line)
		}
		entries++
		s, err := Parse(text)
		if err != nil {
			t.Errorf("%s:%d: recorded schedule no longer parses: %v", corpusPath, lineNo+1, err)
			continue
		}
		if rt := s.String(); rt != text {
			t.Errorf("%s:%d: round trip changed the schedule:\nrecorded %s\nreprint  %s",
				corpusPath, lineNo+1, text, rt)
			continue
		}
		if want == "parse-only" {
			continue
		}
		if got := verdictKey(Run(s)); got != want {
			t.Errorf("%s:%d: verdict drifted\nschedule %s\nrecorded %s\nnow      %s",
				corpusPath, lineNo+1, text, want, got)
		}
	}
	if entries == 0 {
		t.Fatalf("%s holds no entries", corpusPath)
	}

	// The corpus must stay in sync with its generator: a changed Generate
	// draw sequence shows up here even before verdicts drift.
	if want := len(corpusEntries()); entries != want {
		t.Errorf("corpus has %d entries but the generator defines %d (rerun -update-corpus deliberately, bumping the version if the language changed)", entries, want)
	}
}
