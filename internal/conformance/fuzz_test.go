package conformance

import (
	"testing"
)

// fuzzEngine drives one guarded-engine target with byte-derived schedules.
// Any failing input is reported with its replay string and the shrunk
// minimal counterexample, so the failure reproduces outside the fuzzer:
//
//	go run ./cmd/conformance -replay '<schedule>'
func fuzzEngine(f *testing.F, target string) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{3, 1, 200, 200, 10, 20, 30, 0xB2, 1, 5, 40, 50})
	f.Add(int64(3), []byte{0, 2, 0xB0, 0, 0, 1, 2, 3, 0xB4, 2, 9, 7, 7, 7, 0xB3, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		s := FromBytes(target, seed, data)
		v := Run(s)
		if v.OK {
			return
		}
		m := Shrink(s, func(c Schedule) bool { return !Run(c).OK })
		t.Fatalf("%v\n  schedule: %s\n  shrunk:   %s\n  replay: go run ./cmd/conformance -replay '%s'",
			v, s.String(), m.String(), m.String())
	})
}

func FuzzCB(f *testing.F) { fuzzEngine(f, "cb") }
func FuzzRB(f *testing.F) { fuzzEngine(f, "rb") }
func FuzzTB(f *testing.F) { fuzzEngine(f, "tb") }
func FuzzDT(f *testing.F) { fuzzEngine(f, "dt") }
func FuzzMB(f *testing.F) { fuzzEngine(f, "mb") }

// fuzzLiveBarrier drives the live goroutine barrier over the given
// transport target. Its interleavings are not replayable step-for-step, so
// a failure report includes the schedule but shrinking is left to the CLI
// (re-running a wall-clock schedule thousands of times inside the fuzz
// worker would stall the fuzzer).
func fuzzLiveBarrier(f *testing.F, target string) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		// Keep per-case wall-clock small: byte-derived runtime schedules are
		// already capped, but drop the per-message fault rates further so the
		// verification tail converges quickly.
		s := FromBytes(target, seed, data)
		if s.Loss > 0.05 {
			s.Loss = 0.05
		}
		if s.Corrupt > 0.05 {
			s.Corrupt = 0.05
		}
		if v := Run(s); !v.OK {
			t.Fatalf("%v\n  schedule: %s\n  replay: go run ./cmd/conformance -replay '%s'",
				v, s.String(), s.String())
		}
	})
}

func FuzzRuntime(f *testing.F) { fuzzLiveBarrier(f, TargetRuntime) }

// FuzzRuntimeTCP runs the identical schedule space over loopback TCP
// links: the protocol result must not depend on the transport, and every
// case additionally exercises framing and the socket-failure→loss mapping.
func FuzzRuntimeTCP(f *testing.F) { fuzzLiveBarrier(f, TargetTCP) }

// FuzzRuntimeTree runs the identical schedule space through the tree
// topology: the protocol result must not depend on whether the barrier is
// the ring or the double-tree refinement, and every case exercises the
// broadcast/convergecast engine under the same fault mix.
func FuzzRuntimeTree(f *testing.F) { fuzzLiveBarrier(f, TargetTree) }

// FuzzRuntimeMux runs the identical schedule space with the scheduled
// barrier multiplexed as one tenant group among several on shared TCP
// connections: the verdict must not depend on the cross-traffic, and
// every case exercises group tagging and per-group demultiplexing.
func FuzzRuntimeMux(f *testing.F) { fuzzLiveBarrier(f, TargetMux) }

// FuzzRuntimeHybrid runs the identical schedule space through the hybrid
// topology — members fused two per host, hosts joined in a tree: the
// verdict must not depend on the fusion, and every case exercises the
// fused scheduler plus the host-root edge remapping under the same fault
// mix.
func FuzzRuntimeHybrid(f *testing.F) { fuzzLiveBarrier(f, TargetHybrid) }

// FuzzRuntimeByz skews the byte-derived schedule space toward the
// Byzantine adversary: every spurious injection becomes a crafted forgery
// and the per-message fault rates drop to zero, so a large fraction of
// cases are byz-only — which arms the runner's exactness oracle
// (barrier_rejected_frames_total must equal the accepted injections) on
// top of the usual tolerance verdict.
func FuzzRuntimeByz(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{1, 1, 2, 3, 10, 20, 0xB2, 1, 5, 40})
	f.Add(int64(3), []byte{2, 2, 0, 1, 2, 3, 0xB3, 1, 6, 9, 9, 9, 0xB3, 2, 8})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		s := FromBytes(TargetRuntime, seed, data)
		s.Loss, s.Corrupt = 0, 0
		for i := range s.Ops {
			if s.Ops[i].Kind == OpSpurious {
				s.Ops[i].Kind = OpByz
			}
		}
		if v := Run(s); !v.OK {
			t.Fatalf("%v\n  schedule: %s\n  replay: go run ./cmd/conformance -replay '%s'",
				v, s.String(), s.String())
		}
	})
}

// FuzzScheduleParse checks that Parse never panics and that accepted inputs
// are fixed points of the String/Parse round trip.
func FuzzScheduleParse(f *testing.F) {
	f.Add("cb:n=4:ph=3:seed=17:sched=random:ops=12s,r2,3s,u1:99,c0,2s,R0,5s")
	f.Add("runtime:n=3:ph=2:seed=-5:sched=random:loss=0.1:corrupt=0.05:ops=p1:42,8s,u0:7")
	f.Add("tcp:n=3:ph=2:seed=9:sched=random:loss=0.05:corrupt=0.05:ops=6s,r1,6s")
	f.Add("mb:n=2:ph=2:seed=0:sched=pick:ops=s:19,s:3")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("rendered schedule rejected: %v (%q -> %q)", err, text, s.String())
		}
		if again.String() != s.String() {
			t.Fatalf("String/Parse not a fixed point: %q -> %q", s.String(), again.String())
		}
	})
}
