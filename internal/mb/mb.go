// Package mb implements program MB, the Section 5 message-passing
// refinement of RB: every action either communicates with one neighbor or
// updates the process's own state, but not both, so the program can be
// implemented with messages.
//
// Each process j additionally maintains local copies of its predecessor's
// variables — snL.j, cpL.j, phL.j mirroring sn.(j−1), cp.(j−1), ph.(j−1) —
// and a local copy snR.j of its successor's sequence number (used only to
// propagate ⊤). The sequence-number domain is widened from K > N to
// L > 2N+1, because the local copies effectively double the ring: the
// paper proves MB's computations equivalent to RB's on a ring of 2(N+1)
// processes, alternating copy-cells and real processes.
//
// The actions are the RB actions rewritten to read local copies:
//
//	C.j  (copy) :: sn.(j−1)∉{⊥,⊤} ∧ snL.j≠sn.(j−1) →
//	               snL.j := sn.(j−1); (cpL.j,phL.j) := follower-update from (cp.(j−1),ph.(j−1))
//	T1'.0       :: snL.0∉{⊥,⊤} ∧ (sn.0=snL.0 ∨ sn.0∈{⊥,⊤}) →
//	               sn.0 := snL.0+1; (cp.0,ph.0) := leader-update from (cpL.0,phL.0)
//	T2'.j (j≠0) :: snL.j∉{⊥,⊤} ∧ sn.j≠snL.j →
//	               sn.j := snL.j;   (cp.j,ph.j) := follower-update from (cpL.j,phL.j)
//	T3.N        :: sn.N=⊥ → sn.N := ⊤
//	R.j  (j≠N)  :: sn.(j+1)=⊤ ∧ snR.j≠⊤ → snR.j := ⊤
//	T4'.j (j≠N) :: sn.j=⊥ ∧ snR.j=⊤ → sn.j := ⊤
//	T5.0        :: sn.0=⊤ → sn.0 := 0
//
// Note the copy-update action C.j is "identical to the superposed action T2
// at a non-0 process" (the copy cell behaves like a ring process), and the
// events of the barrier specification are emitted by the real processes
// only (actions T1'/T2').
package mb

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/guarded"
	"repro/internal/tokenring"
)

// SN aliases the token-ring sequence-number type.
type SN = tokenring.SN

// Special sequence-number values, re-exported for convenience.
const (
	Bot = tokenring.Bot
	Top = tokenring.Top
)

// EventSink receives the Begin/Complete/Reset events of a computation.
type EventSink = core.EventSink

// Program is an instance of MB over a ring of n processes.
type Program struct {
	n       int
	nPhases int
	l       int // sequence-number modulus, L > 2N+1

	// Own variables of process j.
	sn []SN
	cp []core.CP
	ph []int

	// Local copies at process j of predecessor j−1's variables, and of
	// successor j+1's sequence number.
	snL []SN
	cpL []core.CP
	phL []int
	snR []SN

	prog *guarded.Program
	rng  *rand.Rand
	sink EventSink
}

// New builds an MB instance with sequence numbers modulo l. The refinement
// requires L > 2N+1, i.e. l ≥ 2*nProcs. rng must not be nil; sink may be
// nil.
func New(nProcs, nPhases, l int, rng *rand.Rand, sink EventSink) (*Program, error) {
	if nProcs < 2 {
		return nil, errors.New("mb: need at least 2 processes")
	}
	if nPhases < 2 {
		return nil, errors.New("mb: need at least 2 phases")
	}
	if l < 2*nProcs {
		return nil, fmt.Errorf("mb: need L > 2N+1, got L=%d with N=%d", l, nProcs-1)
	}
	if rng == nil {
		return nil, errors.New("mb: rng must not be nil")
	}
	p := &Program{
		n:       nProcs,
		nPhases: nPhases,
		l:       l,
		sn:      make([]SN, nProcs),
		cp:      make([]core.CP, nProcs),
		ph:      make([]int, nProcs),
		snL:     make([]SN, nProcs),
		cpL:     make([]core.CP, nProcs),
		phL:     make([]int, nProcs),
		snR:     make([]SN, nProcs),
	}
	p.rng = rng
	p.sink = sink
	p.prog = guarded.NewProgram()
	p.addActions()
	return p, nil
}

// Guarded returns the underlying guarded-command program for scheduling.
func (p *Program) Guarded() *guarded.Program { return p.prog }

// N returns the number of processes.
func (p *Program) N() int { return p.n }

// NumPhases returns the length of the cyclic phase sequence.
func (p *Program) NumPhases() int { return p.nPhases }

// L returns the sequence-number modulus.
func (p *Program) L() int { return p.l }

// CP returns process j's control position.
func (p *Program) CP(j int) core.CP { return p.cp[j] }

// Phase returns process j's phase number.
func (p *Program) Phase(j int) int { return p.ph[j] }

// SN returns process j's own sequence number.
func (p *Program) SN(j int) SN { return p.sn[j] }

func (p *Program) emit(e core.Event) {
	if p.sink != nil {
		p.sink(e)
	}
}

func (p *Program) succSN(s SN) SN { return SN((int(s) + 1) % p.l) }

func (p *Program) pred(j int) int { return (j - 1 + p.n) % p.n }
func (p *Program) succ(j int) int { return (j + 1) % p.n }

func (p *Program) addActions() {
	last := p.n - 1

	for j := 0; j < p.n; j++ {
		j := j
		prev := p.pred(j)

		// C.j: update the local copies of the predecessor's variables.
		// This is a pure communication action: it reads (j−1)'s state and
		// writes only j's copy variables. The copy cell evolves by the
		// same follower statement as a real non-0 process.
		p.prog.Add(guarded.Action{
			Name: fmt.Sprintf("C.%d", j),
			Proc: j,
			Guard: func() bool {
				return p.sn[prev].Ordinary() && p.snL[j] != p.sn[prev]
			},
			Body: func() func() {
				sn := p.sn[prev]
				newCP, newPH, _ := core.FollowerUpdate(p.cpL[j], p.phL[j], p.cp[prev], p.ph[prev])
				return func() {
					p.snL[j] = sn
					p.cpL[j] = newCP
					p.phL[j] = newPH
				}
			},
		})

		if j == 0 {
			// T1'.0: receive the token from the local copy of N.
			p.prog.Add(guarded.Action{
				Name: "T1'.0",
				Proc: 0,
				Guard: func() bool {
					return p.snL[0].Ordinary() &&
						(p.sn[0] == p.snL[0] || !p.sn[0].Ordinary())
				},
				Body: func() func() {
					next := p.succSN(p.snL[0])
					newCP, newPH, out := core.LeaderUpdate(p.cp[0], p.ph[0], p.cpL[0], p.phL[0], p.nPhases)
					phase := p.ph[0]
					return func() {
						p.sn[0] = next
						p.cp[0] = newCP
						p.ph[0] = newPH
						p.emitOutcome(0, out, phase, newPH)
					}
				},
			})
		} else {
			// T2'.j: receive the token from the local copy of j−1.
			p.prog.Add(guarded.Action{
				Name: fmt.Sprintf("T2'.%d", j),
				Proc: j,
				Guard: func() bool {
					return p.snL[j].Ordinary() && p.sn[j] != p.snL[j]
				},
				Body: func() func() {
					sn := p.snL[j]
					newCP, newPH, out := core.FollowerUpdate(p.cp[j], p.ph[j], p.cpL[j], p.phL[j])
					phase := p.ph[j]
					return func() {
						p.sn[j] = sn
						p.cp[j] = newCP
						p.ph[j] = newPH
						p.emitOutcome(j, out, phase, newPH)
					}
				},
			})
		}

		if j != last {
			next := p.succ(j)
			// R.j: learn that the successor's sequence number is ⊤.
			p.prog.Add(guarded.Action{
				Name:  fmt.Sprintf("R.%d", j),
				Proc:  j,
				Guard: func() bool { return p.sn[next] == Top && p.snR[j] != Top },
				Body:  func() func() { return func() { p.snR[j] = Top } },
			})
			// T4'.j: propagate ⊤ backward using the local copy.
			p.prog.Add(guarded.Action{
				Name:  fmt.Sprintf("T4'.%d", j),
				Proc:  j,
				Guard: func() bool { return p.sn[j] == Bot && p.snR[j] == Top },
				Body:  func() func() { return func() { p.sn[j] = Top } },
			})
		}
	}

	// T3.N: a ⊥ at the end of the ring turns into ⊤.
	p.prog.Add(guarded.Action{
		Name:  fmt.Sprintf("T3.%d", last),
		Proc:  last,
		Guard: func() bool { return p.sn[last] == Bot },
		Body:  func() func() { return func() { p.sn[last] = Top } },
	})

	// T5.0: ⊤ at process 0 restarts a fully corrupted ring.
	p.prog.Add(guarded.Action{
		Name:  "T5.0",
		Proc:  0,
		Guard: func() bool { return p.sn[0] == Top },
		Body:  func() func() { return func() { p.sn[0] = 0 } },
	})
}

func (p *Program) emitOutcome(j int, out core.Outcome, oldPhase, newPhase int) {
	switch out {
	case core.OutBegin:
		p.emit(core.Event{Kind: core.EvBegin, Proc: j, Phase: newPhase})
	case core.OutComplete:
		p.emit(core.Event{Kind: core.EvComplete, Proc: j, Phase: oldPhase})
	case core.OutAbandon:
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: oldPhase})
	}
}

// randomSN returns a uniformly random value of the sn domain
// ({0..L−1} ∪ {⊥,⊤}).
func (p *Program) randomSN() SN {
	v := p.rng.Intn(p.l + 2)
	switch v {
	case p.l:
		return Bot
	case p.l + 1:
		return Top
	default:
		return SN(v)
	}
}

// InjectDetectable applies MB's detectable fault action to process j: its
// own variables become (?, error, ⊥) and, per Section 5, its local copies
// of sn.(j−1) and sn.(j+1) become ⊥, its copy of cp.(j−1) becomes error,
// and its copy of ph.(j−1) becomes arbitrary.
func (p *Program) InjectDetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	if p.cp[j] != core.Error {
		p.emit(core.Event{Kind: core.EvReset, Proc: j, Phase: p.ph[j]})
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.Error
	p.sn[j] = Bot
	p.snL[j] = Bot
	p.cpL[j] = core.Error
	p.phL[j] = p.rng.Intn(p.nPhases)
	p.snR[j] = Bot
}

// InjectUndetectable applies MB's undetectable fault action to process j:
// all variables of j, including the local copies, are set to arbitrary
// values from their domains.
func (p *Program) InjectUndetectable(j int) {
	if j < 0 || j >= p.n {
		return
	}
	p.ph[j] = p.rng.Intn(p.nPhases)
	p.cp[j] = core.CP(p.rng.Intn(core.NumCP))
	p.sn[j] = p.randomSN()
	p.snL[j] = p.randomSN()
	p.cpL[j] = core.CP(p.rng.Intn(core.NumCP))
	p.phL[j] = p.rng.Intn(p.nPhases)
	p.snR[j] = p.randomSN()
}

// InStartState reports whether all processes (and their copy cells) are
// ready in one phase with consistent ordinary sequence numbers — a state
// from which the next token circulation starts a fresh instance.
func (p *Program) InStartState() bool {
	for j := 0; j < p.n; j++ {
		if p.cp[j] != core.Ready || p.ph[j] != p.ph[0] {
			return false
		}
		if p.cpL[j] != core.Ready || p.phL[j] != p.ph[0] {
			return false
		}
		if !p.sn[j].Ordinary() || !p.snL[j].Ordinary() {
			return false
		}
	}
	return p.tokenCount() == 1
}

// tokenCount counts tokens over the doubled ring of 2(N+1) cells
// (…, copy@j, j, copy@j+1, j+1, …): cell x holds a token iff its sequence
// number differs from its successor cell's (with 0's increment closing the
// ring), all values ordinary.
func (p *Program) tokenCount() int {
	c := 0
	for j := 0; j < p.n; j++ {
		// Token between copy@j and j.
		if p.snL[j].Ordinary() && p.sn[j].Ordinary() {
			if j == 0 {
				if p.sn[0] == p.snL[0] {
					c++ // T1' enabled: 0 is about to receive
				}
			} else if p.sn[j] != p.snL[j] {
				c++
			}
		}
		// Token between j and copy@succ(j).
		next := p.succ(j)
		if p.sn[j].Ordinary() && p.snL[next].Ordinary() && p.snL[next] != p.sn[j] {
			c++
		}
	}
	return c
}

// TokenCount exposes the doubled-ring token count for tests.
func (p *Program) TokenCount() int { return p.tokenCount() }

// Snapshot returns copies of the cp and ph vectors of the real processes.
func (p *Program) Snapshot() ([]core.CP, []int) {
	return append([]core.CP(nil), p.cp...), append([]int(nil), p.ph...)
}

// String renders the global state compactly: for each process, its copy
// cell then its own state.
func (p *Program) String() string {
	s := "["
	for j := 0; j < p.n; j++ {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("(%c%d/%v)%c%d/%v",
			p.cpL[j].Letter(), p.phL[j], p.snL[j],
			p.cp[j].Letter(), p.ph[j], p.sn[j])
	}
	return s + "]"
}

// Corrupted reports whether process j is in a detectably corrupted state.
func (p *Program) Corrupted(j int) bool {
	return p.cp[j] == core.Error || !p.sn[j].Ordinary()
}

// SetSink replaces the event sink (used by harnesses that attach metrics
// or checkers after construction).
func (p *Program) SetSink(sink EventSink) { p.sink = sink }
