package mb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rb"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(1, 2, 10, rng, nil); err == nil {
		t.Error("single process should be rejected")
	}
	if _, err := New(3, 1, 10, rng, nil); err == nil {
		t.Error("single phase should be rejected")
	}
	if _, err := New(4, 2, 7, rng, nil); err == nil {
		t.Error("L ≤ 2N+1 should be rejected")
	}
	if _, err := New(4, 2, 8, rng, nil); err != nil {
		t.Errorf("L = 2N+2 is legal: %v", err)
	}
	if _, err := New(3, 2, 10, nil, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
}

// MB satisfies the barrier specification in the absence of faults.
func TestFaultFreeBarriers(t *testing.T) {
	type stepper func(p *Program, rng *rand.Rand) bool
	steppers := map[string]stepper{
		"roundRobin": func(p *Program, _ *rand.Rand) bool {
			_, ok := p.Guarded().StepRoundRobin()
			return ok
		},
		"random": func(p *Program, rng *rand.Rand) bool {
			_, ok := p.Guarded().StepRandom(rng)
			return ok
		},
		"maxParallel": func(p *Program, rng *rand.Rand) bool {
			return p.Guarded().StepMaxParallel(rng) > 0
		},
	}
	for name, step := range steppers {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			const n, nPhases, wantBarriers = 5, 3, 12
			checker := core.NewSpecChecker(n, nPhases)
			p, err := New(n, nPhases, 2*n+2, rng, checker.Observe)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 400000 && checker.SuccessfulBarriers() < wantBarriers; i++ {
				if !step(p, rng) {
					t.Fatalf("deadlock in state %v", p)
				}
			}
			if err := checker.Violation(); err != nil {
				t.Fatal(err)
			}
			if got := checker.SuccessfulBarriers(); got < wantBarriers {
				t.Fatalf("only %d successful barriers (state %v)", got, p)
			}
			if checker.Instances() > checker.SuccessfulBarriers()+1 {
				t.Errorf("instances=%d successes=%d: fault-free run re-executed phases",
					checker.Instances(), checker.SuccessfulBarriers())
			}
		})
	}
}

// The doubled-ring equivalence (property ⋆ of the appendix): fault-free,
// MB circulates exactly one token over the 2(N+1) cells.
func TestDoubledRingSingleToken(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 4
	p, err := New(n, 2, 2*n+2, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if c := p.TokenCount(); c != 1 {
			t.Fatalf("step %d: doubled-ring token count = %d, want 1 (state %v)",
				i, c, p)
		}
		if _, ok := p.Guarded().StepRoundRobin(); !ok {
			t.Fatal("deadlock")
		}
	}
}

func injectDetectableIfSafe(p *Program, rng *rand.Rand) {
	j := rng.Intn(p.N())
	for k := 0; k < p.N(); k++ {
		if k != j && p.CP(k) != core.Error {
			p.InjectDetectable(j)
			return
		}
	}
}

// MB is masking tolerant to detectable faults (appendix proof).
func TestDetectableFaultsMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		nPhases := 2 + rng.Intn(3)
		checker := core.NewSpecChecker(n, nPhases)
		p, err := New(n, nPhases, 2*n+2, rng, checker.Observe)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			if rng.Intn(60) == 0 {
				injectDetectableIfSafe(p, rng)
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
			if err := checker.Violation(); err != nil {
				t.Fatalf("trial %d: safety violated with detectable faults: %v (state %v)",
					trial, err, p)
			}
		}
		before := checker.SuccessfulBarriers()
		for i := 0; i < 300000 && checker.SuccessfulBarriers() < before+3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after faults stopped: %v", trial, p)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < before+3 {
			t.Fatalf("trial %d: no progress after faults stopped (state %v)", trial, p)
		}
	}
}

// MB is stabilizing tolerant to undetectable faults, including corruption
// of the local copies.
func TestUndetectableFaultsStabilize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		nPhases := 2 + rng.Intn(3)
		p, err := New(n, nPhases, 2*n+2, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			p.InjectUndetectable(j)
		}
		reached := false
		for i := 0; i < 200000; i++ {
			if p.InStartState() {
				reached = true
				break
			}
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, p)
			}
		}
		if !reached {
			t.Fatalf("trial %d: no start state reached from %v", trial, p)
		}
		checker := core.NewSpecCheckerAt(n, nPhases, p.Phase(0))
		p.sink = checker.Observe
		for i := 0; i < 400000 && checker.SuccessfulBarriers() < 3; i++ {
			if _, ok := p.Guarded().StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock after stabilization", trial)
			}
		}
		if err := checker.Violation(); err != nil {
			t.Fatalf("trial %d: spec violated after stabilization: %v", trial, err)
		}
		if checker.SuccessfulBarriers() < 3 {
			t.Fatalf("trial %d: no progress after stabilization (state %v)", trial, p)
		}
	}
}

// Refinement check: fault-free MB and RB produce identical sequences of
// (proc, phase, kind) events — MB refines RB (which refines CB).
func TestRefinesRB(t *testing.T) {
	const n, nPhases, events = 5, 3, 120
	collect := func(step func() bool, sink *[]core.Event) {
		for len(*sink) < events {
			if !step() {
				break
			}
		}
	}

	var rbEvents []core.Event
	rngRB := rand.New(rand.NewSource(21))
	rbProg, err := rb.New(n, nPhases, n+1, rngRB, func(e core.Event) {
		rbEvents = append(rbEvents, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	collect(func() bool { _, ok := rbProg.Guarded().StepRoundRobin(); return ok }, &rbEvents)

	var mbEvents []core.Event
	rngMB := rand.New(rand.NewSource(22))
	mbProg, err := New(n, nPhases, 2*n+2, rngMB, func(e core.Event) {
		mbEvents = append(mbEvents, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	collect(func() bool { _, ok := mbProg.Guarded().StepRoundRobin(); return ok }, &mbEvents)

	if len(rbEvents) < events || len(mbEvents) < events {
		t.Fatalf("too few events: rb=%d mb=%d", len(rbEvents), len(mbEvents))
	}
	for i := 0; i < events; i++ {
		if rbEvents[i] != mbEvents[i] {
			t.Fatalf("event %d differs: RB %v, MB %v", i, rbEvents[i], mbEvents[i])
		}
	}
}

func TestAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := New(4, 3, 10, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 || p.NumPhases() != 3 || p.L() != 10 {
		t.Error("accessors wrong")
	}
	if p.CP(1) != core.Ready || p.Phase(1) != 0 || p.SN(1) != 0 {
		t.Error("initial state wrong")
	}
	cp, ph := p.Snapshot()
	if len(cp) != 4 || len(ph) != 4 {
		t.Error("snapshot sizes wrong")
	}
	if !p.InStartState() {
		t.Error("fresh program should be in a start state")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}
