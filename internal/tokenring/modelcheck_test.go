package tokenring

import (
	"testing"

	"repro/internal/guarded"
)

// Exhaustive model checking of the token ring on small instances: the
// protocol actions are deterministic, so the reachable transition system
// can be explored completely. We verify, over the ENTIRE state space
// (every possible assignment of sequence numbers, i.e. after arbitrary
// undetectable faults):
//
//  1. no deadlock: every state has an enabled action;
//  2. convergence: from every state a legitimate state (exactly one token,
//     no ⊥/⊤) is reachable;
//  3. closure: every transition from a legitimate state leads to a
//     legitimate state;
//  4. monotonicity: among states whose sequence numbers are all ordinary,
//     no transition increases the number of tokens (the classic
//     self-stabilization argument), and the set of states with at most one
//     token is closed — the protocol never mints a second token; only
//     undetectable faults can (a recovering ⊥/⊤ may re-mint the single
//     latent token, which is why the all-ordinary restriction is needed
//     for the non-increase property).
type ringModel struct {
	n, k   int
	ring   *Ring
	prog   *guarded.Program
	domain []SN
}

func newRingModel(t *testing.T, n, k int) *ringModel {
	t.Helper()
	r, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	prog := guarded.NewProgram()
	for _, a := range r.Actions(nil) {
		prog.Add(a)
	}
	domain := []SN{Bot, Top}
	for v := 0; v < k; v++ {
		domain = append(domain, SN(v))
	}
	return &ringModel{n: n, k: k, ring: r, prog: prog, domain: domain}
}

// encode packs the ring state into an int.
func (m *ringModel) encode() int {
	code := 0
	for j := 0; j < m.n; j++ {
		code = code*(m.k+2) + m.snIndex(m.ring.SN(j))
	}
	return code
}

func (m *ringModel) snIndex(s SN) int {
	switch s {
	case Bot:
		return m.k
	case Top:
		return m.k + 1
	default:
		return int(s)
	}
}

func (m *ringModel) decode(code int) {
	for j := m.n - 1; j >= 0; j-- {
		idx := code % (m.k + 2)
		code /= m.k + 2
		switch idx {
		case m.k:
			m.ring.SetSN(j, Bot)
		case m.k + 1:
			m.ring.SetSN(j, Top)
		default:
			m.ring.SetSN(j, SN(idx))
		}
	}
}

// successors returns the encoded successor states of the encoded state.
func (m *ringModel) successors(code int) []int {
	var succ []int
	for i := 0; i < m.prog.NumActions(); i++ {
		m.decode(code)
		if s, ok := m.stepAction(i); ok {
			succ = append(succ, s)
		}
	}
	return succ
}

// stepAction executes exactly action i if enabled.
func (m *ringModel) stepAction(i int) (int, bool) {
	// The guarded engine has no single-action API; emulate by checking the
	// guard and invoking the body of the i-th action via a one-action
	// subprogram. Actions close over the ring, so rebuilding is cheap.
	actions := m.ring.Actions(nil)
	a := actions[i]
	if !a.Guard() {
		return 0, false
	}
	if commit := a.Body(); commit != nil {
		commit()
	}
	return m.encode(), true
}

func TestModelCheckTokenRing(t *testing.T) {
	for _, cfg := range []struct{ n, k int }{{2, 3}, {3, 4}, {4, 5}} {
		m := newRingModel(t, cfg.n, cfg.k)
		total := 1
		for j := 0; j < cfg.n; j++ {
			total *= cfg.k + 2
		}

		legit := make([]bool, total)
		tokens := make([]int8, total)
		allOrdinary := make([]bool, total)
		succs := make([][]int, total)
		for code := 0; code < total; code++ {
			m.decode(code)
			legit[code] = m.ring.Legitimate()
			tokens[code] = int8(m.ring.TokenCount())
			ord := true
			for j := 0; j < cfg.n; j++ {
				if !m.ring.SN(j).Ordinary() {
					ord = false
				}
			}
			allOrdinary[code] = ord
			succs[code] = m.successors(code)

			// (1) No deadlock anywhere in the full state space.
			if len(succs[code]) == 0 {
				m.decode(code)
				t.Fatalf("n=%d k=%d: deadlock in state %v", cfg.n, cfg.k, m.ring.Snapshot())
			}
			for _, s := range succs[code] {
				m.decode(s)
				tok := int8(m.ring.TokenCount())
				// (4a) Among all-ordinary states the token count never
				// increases.
				if allOrdinary[code] && tok > tokens[code] {
					m.decode(code)
					from := m.ring.Snapshot()
					m.decode(s)
					t.Fatalf("n=%d k=%d: token count increased %d→%d: %v → %v",
						cfg.n, cfg.k, tokens[code], tok, from, m.ring.Snapshot())
				}
			}
			// (3) Closure of the legitimate set.
			if legit[code] {
				for _, s := range succs[code] {
					if !legit[s] {
						// legit[s] may not be computed yet; compute directly.
						m.decode(s)
						if !m.ring.Legitimate() {
							m.decode(code)
							t.Fatalf("n=%d k=%d: legitimate state %v stepped outside the set",
								cfg.n, cfg.k, m.ring.Snapshot())
						}
					}
				}
			}
		}

		// (2) Convergence: backward reachability from the legitimate set
		// must cover the entire state space.
		pred := make([][]int32, total)
		for code := 0; code < total; code++ {
			for _, s := range succs[code] {
				pred[s] = append(pred[s], int32(code))
			}
		}
		canReach := make([]bool, total)
		queue := make([]int32, 0, total)
		for code := 0; code < total; code++ {
			m.decode(code)
			if m.ring.Legitimate() {
				canReach[code] = true
				queue = append(queue, int32(code))
			}
		}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, p := range pred[s] {
				if !canReach[p] {
					canReach[p] = true
					queue = append(queue, p)
				}
			}
		}
		for code := 0; code < total; code++ {
			if !canReach[code] {
				m.decode(code)
				t.Fatalf("n=%d k=%d: state %v cannot reach a legitimate state",
					cfg.n, cfg.k, m.ring.Snapshot())
			}
		}

		// (5) Paper property (a): over the closure of the fault-free-
		// reachable states under protocol steps AND detectable faults
		// (sn.j := ⊥ at any process, in any order, including whole-ring
		// corruption), the ring never contains more than one token.
		//
		// The fault-free-reachable states are exactly the two-block states
		// [v,…,v,v−1,…,v−1]: the prefix has adopted the root's new value v
		// and the suffix still holds v−1. (A state like [3,3,1] also has
		// one token but is not reachable without faults, and seeding from
		// it would not satisfy the ≤1-token property — so "one token" alone
		// is a strictly weaker notion than "fault-free reachable".)
		visited := make([]bool, total)
		var frontier []int32
		for v := 0; v < cfg.k; v++ {
			for split := 1; split <= cfg.n; split++ {
				for j := 0; j < cfg.n; j++ {
					if j < split {
						m.ring.SetSN(j, SN(v))
					} else {
						m.ring.SetSN(j, SN((v-1+cfg.k)%cfg.k))
					}
				}
				code := m.encode()
				if !visited[code] {
					visited[code] = true
					frontier = append(frontier, int32(code))
				}
			}
		}
		for len(frontier) > 0 {
			cur := int(frontier[len(frontier)-1])
			frontier = frontier[:len(frontier)-1]
			if tokens[cur] > 1 {
				m.decode(cur)
				t.Fatalf("n=%d k=%d: %d tokens in detectable-fault-reachable state %v",
					cfg.n, cfg.k, tokens[cur], m.ring.Snapshot())
			}
			next := append([]int(nil), succs[cur]...)
			for j := 0; j < cfg.n; j++ {
				m.decode(cur)
				m.ring.SetSN(j, Bot)
				next = append(next, m.encode())
			}
			for _, s := range next {
				if !visited[s] {
					visited[s] = true
					frontier = append(frontier, int32(s))
				}
			}
		}

		t.Logf("n=%d k=%d: verified all %d states (deadlock-freedom, convergence, closure, token monotonicity, ≤1 token under detectable faults)",
			cfg.n, cfg.k, total)
	}
}
