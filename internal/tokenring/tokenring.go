// Package tokenring implements the multitolerant token ring that Section
// 4.1 of the paper superposes barrier synchronization upon (derived by the
// authors in their multitolerance work, cited as [10]).
//
// Each process j of the ring 0..N maintains a sequence number sn.j in
// {0..K−1} for K > N, extended with two special values: ⊥ (the sequence
// number was detectably corrupted) and ⊤ (used to detect whether the whole
// ring was corrupted). The five actions are:
//
//	T1 :: j=0 ∧ sn.N∉{⊥,⊤} ∧ (sn.0=sn.N ∨ sn.0=⊥ ∨ sn.0=⊤) → sn.0 := sn.N+1
//	T2 :: j≠0 ∧ sn.(j−1)∉{⊥,⊤} ∧ sn.j≠sn.(j−1)            → sn.j := sn.(j−1)
//	T3 :: sn.N = ⊥                                          → sn.N := ⊤
//	T4 :: j≠N ∧ sn.j=⊥ ∧ sn.(j+1)=⊤                         → sn.j := ⊤
//	T5 :: sn.0 = ⊤                                          → sn.0 := 0
//
// Process j≠N holds the token iff sn.j ≠ sn.(j+1) with both ordinary;
// process N holds the token iff sn.N = sn.0 with both ordinary.
package tokenring

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/guarded"
)

// SN is a sequence number: a value in {0..K−1}, or Bot (⊥), or Top (⊤).
type SN int

// Special sequence-number values.
const (
	Bot SN = -1 // ⊥: detectably corrupted
	Top SN = -2 // ⊤: whole-ring corruption probe
)

// Ordinary reports whether s is an ordinary sequence number (neither ⊥ nor ⊤).
func (s SN) Ordinary() bool { return s >= 0 }

func (s SN) String() string {
	switch s {
	case Bot:
		return "⊥"
	case Top:
		return "⊤"
	default:
		return fmt.Sprintf("%d", int(s))
	}
}

// Ring is the token-ring state for processes 0..N.
type Ring struct {
	n  int // highest process id; ring size is n+1
	k  int // sequence numbers live in {0..k−1}
	sn []SN
}

// New creates a ring of nProcs processes (ids 0..nProcs−1) with sequence
// numbers modulo k. The paper requires K > N, i.e. k ≥ nProcs; the
// message-passing refinement MB widens this to L > 2N+1.
func New(nProcs, k int) (*Ring, error) {
	if nProcs < 2 {
		return nil, errors.New("tokenring: need at least 2 processes")
	}
	if k < nProcs {
		return nil, fmt.Errorf("tokenring: need K > N, got K=%d with N=%d", k, nProcs-1)
	}
	r := &Ring{n: nProcs - 1, k: k, sn: make([]SN, nProcs)}
	// Start state: all sequence numbers equal, so process N holds the token
	// and process 0's T1 is enabled.
	return r, nil
}

// Size returns the number of processes, N+1.
func (r *Ring) Size() int { return r.n + 1 }

// N returns the highest process id.
func (r *Ring) N() int { return r.n }

// K returns the sequence-number modulus.
func (r *Ring) K() int { return r.k }

// SN returns process j's sequence number.
func (r *Ring) SN(j int) SN { return r.sn[j] }

// SetSN overwrites process j's sequence number. It is the hook used by
// fault actions: a detectable fault sets ⊥, an undetectable fault sets an
// arbitrary domain value.
func (r *Ring) SetSN(j int, v SN) { r.sn[j] = v }

// RandomSN returns a uniformly random value of the full sn domain
// ({0..K−1} ∪ {⊥,⊤}), for undetectable-fault injection.
func (r *Ring) RandomSN(rng *rand.Rand) SN {
	v := rng.Intn(r.k + 2)
	switch v {
	case r.k:
		return Bot
	case r.k + 1:
		return Top
	default:
		return SN(v)
	}
}

// succ returns sn+1 modulo K (only defined for ordinary values).
func (r *Ring) succ(s SN) SN { return SN((int(s) + 1) % r.k) }

// HasToken reports whether process j currently holds the token.
func (r *Ring) HasToken(j int) bool {
	if j == r.n {
		return r.sn[r.n] == r.sn[0] && r.sn[r.n].Ordinary() && r.sn[0].Ordinary()
	}
	return r.sn[j] != r.sn[j+1] && r.sn[j].Ordinary() && r.sn[j+1].Ordinary()
}

// TokenCount returns the number of processes currently holding a token. In
// a legitimate state it is exactly 1; detectable faults keep it ≤ 1, and
// undetectable faults may transiently push it higher before the ring
// stabilizes.
func (r *Ring) TokenCount() int {
	c := 0
	for j := 0; j <= r.n; j++ {
		if r.HasToken(j) {
			c++
		}
	}
	return c
}

// Corrupted reports whether process j can locally detect that it was
// detectably corrupted (property (b) of the paper: sn is ⊥ or ⊤).
func (r *Ring) Corrupted(j int) bool { return !r.sn[j].Ordinary() }

// Legitimate reports whether the ring is in a legitimate state: no special
// values and exactly one token.
func (r *Ring) Legitimate() bool {
	for j := 0; j <= r.n; j++ {
		if !r.sn[j].Ordinary() {
			return false
		}
	}
	return r.TokenCount() == 1
}

// Superposition is the hook by which program RB rides on the ring: when
// process j is about to receive the token (execute T1 or T2), the hook is
// invoked against the pre-state and the commit it returns is applied
// atomically with the sequence-number update. A nil hook, or a nil commit,
// superposes nothing.
type Superposition func(j int) func()

// Actions returns the five guarded actions of the token ring, with onToken
// superposed on T1 and T2. The returned actions reference the ring state
// directly and may be added to a guarded.Program together with actions of
// other protocol layers.
func (r *Ring) Actions(onToken Superposition) []guarded.Action {
	var acts []guarded.Action

	// T1 at process 0.
	acts = append(acts, guarded.Action{
		Name: "T1.0",
		Proc: 0,
		Guard: func() bool {
			last := r.sn[r.n]
			me := r.sn[0]
			return last.Ordinary() && (me == last || me == Bot || me == Top)
		},
		Body: func() func() {
			next := r.succ(r.sn[r.n])
			var super func()
			if onToken != nil {
				super = onToken(0)
			}
			return func() {
				r.sn[0] = next
				if super != nil {
					super()
				}
			}
		},
	})

	// T2 at processes 1..N.
	for j := 1; j <= r.n; j++ {
		j := j
		acts = append(acts, guarded.Action{
			Name: fmt.Sprintf("T2.%d", j),
			Proc: j,
			Guard: func() bool {
				prev := r.sn[j-1]
				return prev.Ordinary() && r.sn[j] != prev
			},
			Body: func() func() {
				v := r.sn[j-1]
				var super func()
				if onToken != nil {
					super = onToken(j)
				}
				return func() {
					r.sn[j] = v
					if super != nil {
						super()
					}
				}
			},
		})
	}

	// T3 at process N: ⊥ → ⊤.
	acts = append(acts, guarded.Action{
		Name:  fmt.Sprintf("T3.%d", r.n),
		Proc:  r.n,
		Guard: func() bool { return r.sn[r.n] == Bot },
		Body:  func() func() { return func() { r.sn[r.n] = Top } },
	})

	// T4 at processes j≠N: propagate ⊤ backward through ⊥s.
	for j := 0; j < r.n; j++ {
		j := j
		acts = append(acts, guarded.Action{
			Name:  fmt.Sprintf("T4.%d", j),
			Proc:  j,
			Guard: func() bool { return r.sn[j] == Bot && r.sn[j+1] == Top },
			Body:  func() func() { return func() { r.sn[j] = Top } },
		})
	}

	// T5 at process 0: ⊤ → 0 restarts a fully corrupted ring.
	acts = append(acts, guarded.Action{
		Name:  "T5.0",
		Proc:  0,
		Guard: func() bool { return r.sn[0] == Top },
		Body:  func() func() { return func() { r.sn[0] = 0 } },
	})

	return acts
}

// Snapshot returns a copy of the sequence numbers, for tests and traces.
func (r *Ring) Snapshot() []SN { return append([]SN(nil), r.sn...) }
