package tokenring

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/guarded"
)

func newRing(t *testing.T, n, k int) *Ring {
	t.Helper()
	r, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 5); err == nil {
		t.Error("single-process ring should be rejected")
	}
	if _, err := New(5, 4); err == nil {
		t.Error("K ≤ N should be rejected")
	}
	if _, err := New(5, 5); err != nil {
		t.Errorf("K = N+1 is legal: %v", err)
	}
}

func TestSNString(t *testing.T) {
	if Bot.String() != "⊥" || Top.String() != "⊤" || SN(3).String() != "3" {
		t.Error("SN string rendering broken")
	}
	if Bot.Ordinary() || Top.Ordinary() || !SN(0).Ordinary() {
		t.Error("Ordinary misclassifies")
	}
}

func TestStartStateHasOneToken(t *testing.T) {
	r := newRing(t, 5, 6)
	if r.TokenCount() != 1 {
		t.Fatalf("start state token count = %d, want 1", r.TokenCount())
	}
	if !r.HasToken(r.N()) {
		t.Error("in the all-equal start state process N holds the token")
	}
	if !r.Legitimate() {
		t.Error("start state should be legitimate")
	}
}

// In the absence of faults the ring circulates exactly one token, visiting
// processes in order 0, 1, …, N, 0, 1, …
func TestFaultFreeCirculation(t *testing.T) {
	const n = 6
	r := newRing(t, n, n+2)
	prog := guarded.NewProgram()
	var receipts []int
	for _, a := range r.Actions(func(j int) func() {
		return func() { receipts = append(receipts, j) }
	}) {
		prog.Add(a)
	}
	for step := 0; step < 4*n; step++ {
		if r.TokenCount() != 1 {
			t.Fatalf("step %d: token count = %d, want 1", step, r.TokenCount())
		}
		if _, ok := prog.StepRoundRobin(); !ok {
			t.Fatalf("step %d: ring quiescent", step)
		}
	}
	for i, j := range receipts {
		if j != i%n {
			t.Fatalf("receipt order %v, want cyclic 0..%d", receipts, n-1)
		}
	}
}

// Detectable faults (sn := ⊥) never create a second token, each corrupted
// process can locally detect its corruption, and the ring converges back to
// exactly one token. Process 0 never executes T4 or T5.
func TestDetectableFaultRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		r := newRing(t, n, n+1+rng.Intn(4))
		prog := guarded.NewProgram()
		for _, a := range r.Actions(nil) {
			prog.Add(a)
		}
		// Warm the ring up, then corrupt a strict subset of processes
		// (the fault model guarantees some process stays uncorrupted;
		// corrupting everyone detectably is classified undetectable).
		prog.RunRoundRobin(rng.Intn(3*n), func() bool { return false }, nil)
		nFaults := 1 + rng.Intn(n-1)
		for _, j := range rng.Perm(n)[:nFaults] {
			r.SetSN(j, Bot)
			if !r.Corrupted(j) {
				t.Fatal("corrupted process must detect its corruption locally")
			}
		}
		for step := 0; step < 10*n*n; step++ {
			if c := r.TokenCount(); c > 1 {
				t.Fatalf("trial %d: %d tokens after detectable faults (state %v)",
					trial, c, r.Snapshot())
			}
			if r.Legitimate() {
				break
			}
			name, ok := prog.StepRoundRobin()
			if !ok {
				t.Fatalf("trial %d: ring deadlocked in state %v", trial, r.Snapshot())
			}
			if strings.HasSuffix(name, ".0") && (strings.HasPrefix(name, "T4") || strings.HasPrefix(name, "T5")) {
				t.Fatalf("trial %d: process 0 executed %s under detectable faults", trial, name)
			}
		}
		if !r.Legitimate() {
			t.Fatalf("trial %d: ring did not stabilize: %v", trial, r.Snapshot())
		}
	}
}

// When every process is detectably corrupted at once (classified as an
// undetectable fault by the paper), the ⊤ wave restarts the ring via T3,
// T4 and T5.
func TestWholeRingCorruption(t *testing.T) {
	const n = 5
	r := newRing(t, n, n+1)
	prog := guarded.NewProgram()
	for _, a := range r.Actions(nil) {
		prog.Add(a)
	}
	for j := 0; j < n; j++ {
		r.SetSN(j, Bot)
	}
	for step := 0; step < 100*n; step++ {
		if r.Legitimate() {
			return
		}
		if _, ok := prog.StepRoundRobin(); !ok {
			t.Fatalf("deadlock in state %v", r.Snapshot())
		}
	}
	t.Fatalf("ring did not restart from whole-ring corruption: %v", r.Snapshot())
}

// Stabilization from arbitrary states (undetectable faults): the ring
// reaches a legitimate state and stays there.
func TestUndetectableFaultStabilization(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7)
		k := n + 1 + rng.Intn(4)
		r := newRing(t, n, k)
		prog := guarded.NewProgram()
		for _, a := range r.Actions(nil) {
			prog.Add(a)
		}
		for j := 0; j < n; j++ {
			r.SetSN(j, r.RandomSN(rng))
		}
		stabilized := -1
		for step := 0; step < 20*n*n; step++ {
			if r.Legitimate() {
				stabilized = step
				break
			}
			if _, ok := prog.StepRandom(rng); !ok {
				t.Fatalf("trial %d: deadlock in state %v", trial, r.Snapshot())
			}
		}
		if stabilized < 0 {
			t.Fatalf("trial %d: no stabilization from %v", trial, r.Snapshot())
		}
		// Closure: legitimacy is preserved by every subsequent step.
		for step := 0; step < 4*n; step++ {
			if _, ok := prog.StepRandom(rng); !ok {
				t.Fatalf("trial %d: legitimate ring deadlocked", trial)
			}
			if !r.Legitimate() {
				t.Fatalf("trial %d: legitimacy not closed under execution: %v",
					trial, r.Snapshot())
			}
		}
	}
}

// Same stabilization property under the maximal parallel semantics used by
// the paper's performance evaluation.
func TestStabilizationUnderMaxParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		r := newRing(t, n, 2*n)
		prog := guarded.NewProgram()
		for _, a := range r.Actions(nil) {
			prog.Add(a)
		}
		for j := 0; j < n; j++ {
			r.SetSN(j, r.RandomSN(rng))
		}
		ok := false
		for round := 0; round < 10*n; round++ {
			if r.Legitimate() {
				ok = true
				break
			}
			if prog.StepMaxParallel(rng) == 0 {
				t.Fatalf("trial %d: deadlock in state %v", trial, r.Snapshot())
			}
		}
		if !ok {
			t.Fatalf("trial %d: no stabilization under maximal parallelism: %v",
				trial, r.Snapshot())
		}
	}
}

// Property: the token predicate marks at most one holder in any state
// reachable from a legitimate state by detectable faults.
func TestAtMostOneTokenProperty(t *testing.T) {
	f := func(seed int64, faultsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		r, err := New(n, n+2)
		if err != nil {
			return false
		}
		prog := guarded.NewProgram()
		for _, a := range r.Actions(nil) {
			prog.Add(a)
		}
		for i := 0; i < 50; i++ {
			if int(faultsRaw) > 0 && rng.Intn(5) == 0 {
				r.SetSN(rng.Intn(n-1)+1, Bot) // keep process 0 clean
			}
			prog.StepRandom(rng)
			if r.TokenCount() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSuperpositionCommitsAtomically(t *testing.T) {
	const n = 4
	r := newRing(t, n, n+1)
	prog := guarded.NewProgram()
	snAtReceipt := make(map[int][]SN)
	for _, a := range r.Actions(func(j int) func() {
		return func() {
			// By the time the superposed statement runs, the sequence
			// number update of the same action must already be visible.
			snAtReceipt[j] = append(snAtReceipt[j], r.SN(j))
		}
	}) {
		prog.Add(a)
	}
	prog.RunRoundRobin(3*n, func() bool { return false }, nil)
	for j, sns := range snAtReceipt {
		for i := 1; i < len(sns); i++ {
			if sns[i] == sns[i-1] {
				t.Errorf("process %d saw stale sn at receipt: %v", j, sns)
			}
		}
	}
}
